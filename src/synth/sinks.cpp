#include "synth/sinks.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace appscope::synth {

namespace {
constexpr std::size_t dir_index(workload::Direction d) noexcept {
  return static_cast<std::size_t>(d);
}
}  // namespace

// --- NationalSeriesSink -----------------------------------------------------

NationalSeriesSink::NationalSeriesSink(std::size_t service_count)
    : services_(service_count), data_(service_count) {
  APPSCOPE_REQUIRE(service_count > 0, "NationalSeriesSink: no services");
  for (auto& per_service : data_) {
    for (auto& series : per_service) series.assign(ts::kHoursPerWeek, 0.0);
  }
}

void NationalSeriesSink::consume(const TrafficCell& cell) {
  APPSCOPE_DCHECK(cell.service < services_ && cell.week_hour < ts::kHoursPerWeek,
                  "NationalSeriesSink: cell out of range");
  data_[cell.service][0][cell.week_hour] += cell.downlink_bytes;
  data_[cell.service][1][cell.week_hour] += cell.uplink_bytes;
}

const std::vector<double>& NationalSeriesSink::series(
    workload::ServiceIndex service, workload::Direction d) const {
  APPSCOPE_REQUIRE(service < services_, "NationalSeriesSink: bad service");
  return data_[service][dir_index(d)];
}

ts::TimeSeries NationalSeriesSink::time_series(workload::ServiceIndex service,
                                               workload::Direction d,
                                               const std::string& label) const {
  const auto& s = series(service, d);
  return ts::TimeSeries(std::vector<double>(s.begin(), s.end()), label);
}

std::vector<double> NationalSeriesSink::snapshot_data() const {
  std::vector<double> flat;
  flat.reserve(services_ * workload::kDirectionCount * ts::kHoursPerWeek);
  for (const auto& per_service : data_) {
    for (const auto& series : per_service) {
      flat.insert(flat.end(), series.begin(), series.end());
    }
  }
  return flat;
}

void NationalSeriesSink::restore(std::span<const double> flat) {
  APPSCOPE_REQUIRE(
      flat.size() == services_ * workload::kDirectionCount * ts::kHoursPerWeek,
      "NationalSeriesSink::restore: payload size mismatch");
  std::size_t pos = 0;
  for (auto& per_service : data_) {
    for (auto& series : per_service) {
      std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(pos),
                  ts::kHoursPerWeek, series.begin());
      pos += ts::kHoursPerWeek;
    }
  }
}

// --- CommuneTotalsSink --------------------------------------------------------

CommuneTotalsSink::CommuneTotalsSink(std::size_t service_count,
                                     std::size_t commune_count)
    : services_(service_count), communes_(commune_count) {
  APPSCOPE_REQUIRE(service_count > 0 && commune_count > 0,
                   "CommuneTotalsSink: empty dimensions");
  for (auto& plane : data_) plane.assign(service_count * commune_count, 0.0);
}

void CommuneTotalsSink::consume(const TrafficCell& cell) {
  APPSCOPE_DCHECK(cell.service < services_ && cell.commune < communes_,
                  "CommuneTotalsSink: cell out of range");
  const std::size_t i = cell.service * communes_ + cell.commune;
  data_[0][i] += cell.downlink_bytes;
  data_[1][i] += cell.uplink_bytes;
}

double CommuneTotalsSink::total(workload::ServiceIndex service,
                                geo::CommuneId commune,
                                workload::Direction d) const {
  APPSCOPE_REQUIRE(service < services_ && commune < communes_,
                   "CommuneTotalsSink: index out of range");
  return data_[dir_index(d)][service * communes_ + commune];
}

std::vector<double> CommuneTotalsSink::commune_vector(
    workload::ServiceIndex service, workload::Direction d) const {
  APPSCOPE_REQUIRE(service < services_, "CommuneTotalsSink: bad service");
  const auto& plane = data_[dir_index(d)];
  const std::size_t base = service * communes_;
  return std::vector<double>(plane.begin() + static_cast<std::ptrdiff_t>(base),
                             plane.begin() + static_cast<std::ptrdiff_t>(base + communes_));
}

std::vector<double> CommuneTotalsSink::snapshot_data() const {
  std::vector<double> flat;
  flat.reserve(workload::kDirectionCount * services_ * communes_);
  for (const auto& plane : data_) {
    flat.insert(flat.end(), plane.begin(), plane.end());
  }
  return flat;
}

void CommuneTotalsSink::restore(std::span<const double> flat) {
  APPSCOPE_REQUIRE(
      flat.size() == workload::kDirectionCount * services_ * communes_,
      "CommuneTotalsSink::restore: payload size mismatch");
  const std::size_t plane_size = services_ * communes_;
  std::size_t pos = 0;
  for (auto& plane : data_) {
    std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(pos), plane_size,
                plane.begin());
    pos += plane_size;
  }
}

// --- UrbanizationSeriesSink ---------------------------------------------------

UrbanizationSeriesSink::UrbanizationSeriesSink(std::size_t service_count)
    : services_(service_count), data_(service_count) {
  APPSCOPE_REQUIRE(service_count > 0, "UrbanizationSeriesSink: no services");
  for (auto& per_service : data_) {
    for (auto& per_class : per_service) {
      for (auto& series : per_class) series.assign(ts::kHoursPerWeek, 0.0);
    }
  }
}

void UrbanizationSeriesSink::consume(const TrafficCell& cell) {
  APPSCOPE_DCHECK(cell.service < services_ && cell.week_hour < ts::kHoursPerWeek,
                  "UrbanizationSeriesSink: cell out of range");
  auto& per_class = data_[cell.service][static_cast<std::size_t>(cell.urbanization)];
  per_class[0][cell.week_hour] += cell.downlink_bytes;
  per_class[1][cell.week_hour] += cell.uplink_bytes;
}

const std::vector<double>& UrbanizationSeriesSink::series(
    workload::ServiceIndex service, geo::Urbanization u,
    workload::Direction d) const {
  APPSCOPE_REQUIRE(service < services_, "UrbanizationSeriesSink: bad service");
  return data_[service][static_cast<std::size_t>(u)][dir_index(d)];
}

std::vector<double> UrbanizationSeriesSink::snapshot_data() const {
  std::vector<double> flat;
  flat.reserve(services_ * geo::kUrbanizationCount * workload::kDirectionCount *
               ts::kHoursPerWeek);
  for (const auto& per_service : data_) {
    for (const auto& per_class : per_service) {
      for (const auto& series : per_class) {
        flat.insert(flat.end(), series.begin(), series.end());
      }
    }
  }
  return flat;
}

void UrbanizationSeriesSink::restore(std::span<const double> flat) {
  APPSCOPE_REQUIRE(flat.size() == services_ * geo::kUrbanizationCount *
                                      workload::kDirectionCount *
                                      ts::kHoursPerWeek,
                   "UrbanizationSeriesSink::restore: payload size mismatch");
  std::size_t pos = 0;
  for (auto& per_service : data_) {
    for (auto& per_class : per_service) {
      for (auto& series : per_class) {
        std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(pos),
                    ts::kHoursPerWeek, series.begin());
        pos += ts::kHoursPerWeek;
      }
    }
  }
}

// --- TotalsSink ------------------------------------------------------------------

void TotalsSink::consume(const TrafficCell& cell) {
  downlink_ += cell.downlink_bytes;
  uplink_ += cell.uplink_bytes;
  ++cells_;
}

void TotalsSink::restore(double downlink, double uplink,
                         std::uint64_t cells) noexcept {
  downlink_ = downlink;
  uplink_ = uplink;
  cells_ = cells;
}

// --- BufferSink ------------------------------------------------------------------

void BufferSink::replay_into(TrafficSink& sink) const {
  for (const TrafficCell& cell : cells_) sink.consume(cell);
}

// --- FanoutSink ------------------------------------------------------------------

FanoutSink::FanoutSink(std::vector<TrafficSink*> sinks) : sinks_(std::move(sinks)) {
  for (TrafficSink* s : sinks_) {
    APPSCOPE_REQUIRE(s != nullptr, "FanoutSink: null sink");
  }
}

void FanoutSink::consume(const TrafficCell& cell) {
  for (TrafficSink* s : sinks_) s->consume(cell);
}

}  // namespace appscope::synth
