#include "synth/scenario.hpp"

namespace appscope::synth {

ScenarioConfig ScenarioConfig::test_scale() {
  ScenarioConfig cfg;
  cfg.country.commune_count = 400;
  cfg.country.metro_count = 4;
  cfg.country.side_km = 350.0;
  cfg.country.largest_metro_population = 400'000;
  cfg.country.tgv_line_count = 2;
  cfg.country.tgv_distance_km = 8.0;
  cfg.country.seed = 2016;
  cfg.population.seed = 99;
  cfg.traffic_seed = 4242;
  // At 400 communes a handful of metros dominate the national aggregate, so
  // per-commune jitter is ~10x more visible than nationwide; scale the
  // noise down accordingly to keep the national series realistic.
  cfg.temporal_noise_sigma = 0.02;
  return cfg;
}

ScenarioConfig ScenarioConfig::example_scale() {
  ScenarioConfig cfg;
  cfg.country.commune_count = 4'000;
  cfg.country.metro_count = 8;
  cfg.country.side_km = 700.0;
  cfg.country.largest_metro_population = 1'200'000;
  cfg.country.tgv_line_count = 3;
  cfg.country.seed = 2016;
  cfg.population.seed = 99;
  cfg.traffic_seed = 4242;
  return cfg;
}

ScenarioConfig ScenarioConfig::paper_scale() {
  ScenarioConfig cfg;  // defaults are the nationwide parameters
  return cfg;
}

}  // namespace appscope::synth
