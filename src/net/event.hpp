// appscope/net/event.hpp
//
// The streaming ingest event: one service-classified volume report for one
// commune, the unit the appscope_serve daemon aggregates at production
// rates. Where net::UsageRecord is the *offline* probe output (optional
// service, hour granularity), ServiceEvent is the *wire* shape — fixed-size,
// always classified, second-granular timestamp — so a frame of events can be
// encoded, shipped and replayed without any per-event allocation.
//
// Framing ("appscope.events/1"): a frame is a 24-byte header followed by
// `count` fixed 28-byte little-endian records and protected by an FNV-1a-64
// checksum over the record payload. decode_event_frame validates magic,
// version, size and checksum and throws util::InputError on any mismatch —
// a truncated or corrupted frame never decodes partially.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geo/commune.hpp"
#include "net/types.hpp"

namespace appscope::net {

/// One service-level traffic event. `timestamp` is in seconds and may run
/// past one week (a live stream covers many rolling weeks); consumers fold
/// it into the weekly cycle with week_hour().
struct ServiceEvent {
  Timestamp timestamp = 0;
  geo::CommuneId commune = 0;
  std::uint16_t service = 0;
  std::uint8_t urbanization = 0;  // geo::Urbanization
  std::uint8_t flags = 0;         // reserved
  Bytes downlink_bytes = 0;
  Bytes uplink_bytes = 0;

  /// Hour of the measurement week this event falls in, [0, 168).
  std::size_t week_hour() const noexcept {
    return (timestamp % kSecondsPerWeek) / kSecondsPerHour;
  }

  friend bool operator==(const ServiceEvent&, const ServiceEvent&) = default;
};

/// Wire sizes of the appscope.events/1 framing.
inline constexpr std::size_t kEventFrameHeaderBytes = 24;
inline constexpr std::size_t kEventWireBytes = 28;
inline constexpr std::uint32_t kEventFrameMagic = 0x56455341u;  // "ASEV" LE
inline constexpr std::uint16_t kEventFrameVersion = 1;

/// Serializes events into one self-validating frame.
std::vector<std::uint8_t> encode_event_frame(std::span<const ServiceEvent> events);

/// Parses and validates a frame produced by encode_event_frame. Throws
/// util::InputError on bad magic, version skew, truncation, trailing bytes
/// or checksum mismatch.
std::vector<ServiceEvent> decode_event_frame(std::span<const std::uint8_t> bytes);

}  // namespace appscope::net
