// appscope/net/types.hpp
//
// Identifiers and units shared across the simulated 3G/4G packet core
// (Fig. 1 of the paper: UTRAN/EUTRAN access, GGSN / P-GW gateways, passive
// probes on the Gn and S5/S8 interfaces).
#pragma once

#include <cstdint>

namespace appscope::net {

/// Subscriber identity (IMSI-like opaque id).
using SubscriberId = std::uint64_t;

/// IP session / bearer identity (TEID-like).
using SessionId = std::uint64_t;

/// Cell (base station sector) identity carried in the ULI.
using CellId = std::uint32_t;

/// Seconds since the start of the measurement week.
using Timestamp = std::uint32_t;

/// Traffic volume in bytes.
using Bytes = std::uint64_t;

/// Radio access technology of a cell.
enum class Rat : std::uint8_t {
  kUmts3g = 0,  // UTRAN, traffic through SGSN -> GGSN (Gn interface)
  kLte4g = 1,   // EUTRAN, traffic through S-GW -> P-GW (S5/S8 interface)
};

/// The core-network interface a probe taps.
enum class CoreInterface : std::uint8_t {
  kGn = 0,    // 3G: SGSN <-> GGSN
  kS5S8 = 1,  // 4G: S-GW <-> P-GW
};

inline constexpr Timestamp kSecondsPerHour = 3600;
inline constexpr Timestamp kSecondsPerWeek = 168 * kSecondsPerHour;

}  // namespace appscope::net
