// appscope/net/dpi.hpp
//
// Deep Packet Inspection engine: maps application-layer fingerprint material
// (TLS SNI, HTTP host, protocol heuristics) to a mobile service of the
// catalog. The real operator's implementation is proprietary; this engine
// reproduces its observable behaviour — multiple fingerprinting techniques,
// each tailored to a traffic type, jointly classifying ~88% of the volume
// (paper Sec. 2), the rest staying "unclassified".
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "workload/catalog.hpp"

namespace appscope::net {

/// Classification outcome for one flow fingerprint.
struct DpiMatch {
  workload::ServiceIndex service = 0;
  /// Which technique fired (for per-technique audit counters).
  enum class Technique : std::uint8_t { kSni, kHostSuffix, kHeuristic } technique =
      Technique::kSni;
};

class DpiEngine {
 public:
  /// Builds the fingerprint database for every catalog service.
  explicit DpiEngine(const workload::ServiceCatalog& catalog);

  /// Classifies one fingerprint; std::nullopt = unclassified traffic.
  std::optional<DpiMatch> classify(std::string_view fingerprint) const;

  /// All fingerprints registered for a service (used by traffic generators
  /// to emit realistic flows).
  const std::vector<std::string>& fingerprints(workload::ServiceIndex service) const;

  std::size_t service_count() const noexcept { return by_service_.size(); }

  /// Canonical DNS-ish token for a service name ("Facebook Video" ->
  /// "facebookvideo").
  static std::string canonical_token(std::string_view service_name);

 private:
  void register_fingerprint(const std::string& fp, workload::ServiceIndex service,
                            DpiMatch::Technique technique);

  struct Entry {
    workload::ServiceIndex service;
    DpiMatch::Technique technique;
  };
  /// Exact-match table ("sni:..." and "heur:..." tokens).
  std::unordered_map<std::string, Entry> exact_;
  /// Domain suffix table for "host:<fqdn>" fingerprints.
  std::unordered_map<std::string, Entry> suffix_;
  std::vector<std::vector<std::string>> by_service_;
};

}  // namespace appscope::net
