// appscope/net/probe.hpp
//
// Passive measurement probe tapping the Gn / S5-S8 interfaces (paper Sec. 2):
// it follows GTP-C to keep the last-known ULI of every bearer, inspects
// GTP-U records, classifies them with DPI, geo-references them to the
// commune of the ULI's cell, and emits commune-level usage records.
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <unordered_map>

#include "net/base_station.hpp"
#include "net/dpi.hpp"
#include "net/gtp.hpp"

namespace appscope::net {

/// One classified, geo-referenced traffic observation.
struct UsageRecord {
  /// Catalog service, or nullopt for the ~12% unclassified traffic.
  std::optional<workload::ServiceIndex> service;
  geo::CommuneId commune = 0;
  /// Hour of the measurement week, [0, 168).
  std::size_t week_hour = 0;
  Bytes downlink_bytes = 0;
  Bytes uplink_bytes = 0;
  Rat rat = Rat::kUmts3g;
};

class Probe {
 public:
  using Sink = std::function<void(const UsageRecord&)>;

  /// The probe needs the cell->commune mapping and the DPI engine; both must
  /// outlive it.
  Probe(const BaseStationRegistry& cells, const DpiEngine& dpi);

  /// Registers the consumer of usage records (aggregation sinks).
  void set_sink(Sink sink);

  /// Control-plane tap: create/refresh/delete bearer state and its ULI.
  void on_gtpc(const GtpcEvent& event);

  /// User-plane tap: classify + geo-reference, then emit a UsageRecord.
  /// Records of unknown bearers are counted as orphans and dropped (in a
  /// real deployment these are bearers created before the probe started).
  void on_gtpu(const GtpuRecord& record);

  struct Counters {
    std::uint64_t gtpc_events = 0;
    std::uint64_t gtpu_records = 0;
    std::uint64_t orphan_records = 0;
    Bytes classified_bytes = 0;
    Bytes unclassified_bytes = 0;
    /// Classified records per DPI technique (SNI, host suffix, heuristic).
    std::array<std::uint64_t, 3> technique_hits{};

    /// Fraction of traffic volume the DPI classified (paper: ~0.88).
    double classified_fraction() const noexcept {
      const Bytes total = classified_bytes + unclassified_bytes;
      return total > 0 ? static_cast<double>(classified_bytes) /
                             static_cast<double>(total)
                       : 0.0;
    }
  };

  const Counters& counters() const noexcept { return counters_; }
  std::size_t tracked_bearers() const noexcept { return bearers_.size(); }

 private:
  const BaseStationRegistry& cells_;
  const DpiEngine& dpi_;
  Sink sink_;
  std::unordered_map<SessionId, UserLocationInfo> bearers_;
  Counters counters_;
};

}  // namespace appscope::net
