#include "net/simulator.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "geo/spatial_index.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"
#include "workload/spatial_profile.hpp"
#include "workload/temporal_profile.hpp"

namespace appscope::net {

SessionSimulator::SessionSimulator(const geo::Territory& territory,
                                   const workload::SubscriberBase& subscribers,
                                   const workload::ServiceCatalog& catalog,
                                   const BaseStationRegistry& cells,
                                   const DpiEngine& dpi, SessionSimConfig config)
    : territory_(territory),
      subscribers_(subscribers),
      catalog_(catalog),
      cells_(cells),
      dpi_(dpi),
      config_(std::move(config)) {
  APPSCOPE_REQUIRE(territory_.size() == subscribers_.commune_count(),
                   "SessionSimulator: territory/subscriber mismatch");
  APPSCOPE_REQUIRE(config_.sessions_per_user_week > 0.0,
                   "SessionSimulator: sessions_per_user_week must be > 0");
  APPSCOPE_REQUIRE(config_.session_thinning > 0.0 &&
                       config_.session_thinning <= 1.0,
                   "SessionSimulator: session_thinning must be in (0,1]");
  APPSCOPE_REQUIRE(config_.fingerprint_visible_fraction >= 0.0 &&
                       config_.fingerprint_visible_fraction <= 1.0,
                   "SessionSimulator: fingerprint fraction must be in [0,1]");
  APPSCOPE_REQUIRE(config_.uli_error_probability >= 0.0 &&
                       config_.uli_error_probability <= 1.0,
                   "SessionSimulator: uli_error_probability must be in [0,1]");
  APPSCOPE_REQUIRE(config_.uli_error_radius_km >= 0.0,
                   "SessionSimulator: uli_error_radius_km must be >= 0");
}

SessionSimReport SessionSimulator::run(const Probe::Sink& sink) {
  const util::ScopedSpan span("net.session_sim");
  util::StageTimer timer("net.session_sim");
  // Co-located gateways with one probe tapping both interfaces (Fig. 1).
  Probe probe(cells_, dpi_);
  probe.set_sink(sink);
  Gateway ggsn(CoreInterface::kGn);
  Gateway pgw(CoreInterface::kS5S8);
  ggsn.attach_probe(&probe);
  pgw.attach_probe(&probe);

  // Pre-compute each service's hourly share of the week, for regular and
  // TGV communes (the latter follow train operating hours).
  const std::size_t n_services = catalog_.size();
  std::vector<std::vector<double>> share(n_services);
  std::vector<std::vector<double>> share_tgv(n_services);
  for (std::size_t s = 0; s < n_services; ++s) {
    share[s].resize(ts::kHoursPerWeek);
    share_tgv[s].resize(ts::kHoursPerWeek);
    double total = 0.0;
    double total_tgv = 0.0;
    for (std::size_t h = 0; h < ts::kHoursPerWeek; ++h) {
      const double base = catalog_[s].temporal.evaluate(h);
      share[s][h] = base;
      share_tgv[s][h] = base * workload::tgv_modulation(h);
      total += share[s][h];
      total_tgv += share_tgv[s][h];
    }
    for (std::size_t h = 0; h < ts::kHoursPerWeek; ++h) {
      share[s][h] /= total;
      share_tgv[s][h] /= total_tgv;
    }
  }

  SessionSimReport report;
  util::Rng rng(config_.seed);
  std::uint64_t opaque_counter = 0;

  // Pre-compute each commune's ULI-confusable neighbours (coarse
  // localization can attribute a session to an adjacent commune).
  const geo::SpatialIndex index(territory_);

  for (const auto& commune : territory_.communes()) {
    const double subs = static_cast<double>(subscribers_.subscribers(commune.id));
    const bool is_tgv = commune.urbanization == geo::Urbanization::kTgv;
    util::Rng commune_rng = rng.fork(commune.id);
    const std::vector<geo::CommuneId> uli_neighbors =
        config_.uli_error_probability > 0.0
            ? index.neighbors(commune.id, config_.uli_error_radius_km)
            : std::vector<geo::CommuneId>{};

    for (std::size_t s = 0; s < n_services; ++s) {
      const auto& spec = catalog_[s];
      const double weekly_dl = workload::per_user_rate(
          spec.spatial, spec.urban_rate(workload::Direction::kDownlink), commune,
          config_.seed, s * 2 + 0);
      if (weekly_dl <= 0.0) continue;
      const double weekly_ul = workload::per_user_rate(
          spec.spatial, spec.urban_rate(workload::Direction::kUplink), commune,
          config_.seed, s * 2 + 1);

      const double week_sessions =
          subs * config_.sessions_per_user_week * config_.session_thinning;
      // Mean per-session volumes chosen so expected totals match the rates.
      const double dl_per_session = subs * weekly_dl / week_sessions;
      const double ul_per_session = subs * weekly_ul / week_sessions;
      const double mu_correction = -0.5 * config_.volume_sigma * config_.volume_sigma;

      const auto& hourly = is_tgv ? share_tgv[s] : share[s];
      for (std::size_t h = 0; h < ts::kHoursPerWeek; ++h) {
        const double lambda = week_sessions * hourly[h];
        const std::uint64_t n_sessions = commune_rng.poisson(lambda);
        for (std::uint64_t n = 0; n < n_sessions; ++n) {
          const Rat preferred =
              spec.spatial.requires_4g
                  ? Rat::kLte4g
                  : (commune_rng.bernoulli(0.5) && commune.has_4g ? Rat::kLte4g
                                                                  : Rat::kUmts3g);
          // ULI localization error: the probe may geo-reference this
          // session to a neighbouring commune's cell.
          geo::CommuneId uli_commune = commune.id;
          if (!uli_neighbors.empty() &&
              commune_rng.bernoulli(config_.uli_error_probability)) {
            uli_commune = uli_neighbors[commune_rng.uniform_index(
                uli_neighbors.size())];
          }
          const CellId cell =
              cells_.pick_cell(uli_commune, preferred, commune_rng.next_u64());
          const Rat rat = cells_.station(cell).rat;
          Gateway& gw = rat == Rat::kLte4g ? pgw : ggsn;

          const auto t0 = static_cast<Timestamp>(
              h * kSecondsPerHour +
              commune_rng.uniform_index(kSecondsPerHour - 60));
          const SessionId sid =
              gw.create_session(commune_rng.next_u64(), t0, {cell, rat});
          ++report.sessions;

          // Optional mid-session handover (ULI refresh to a sibling cell).
          if (commune_rng.bernoulli(config_.handover_probability)) {
            const CellId new_cell =
                cells_.pick_cell(commune.id, rat, commune_rng.next_u64());
            gw.location_update(sid, t0 + 10, {new_cell, rat});
            ++report.handovers;
          }

          const double jitter =
              commune_rng.lognormal(mu_correction, config_.volume_sigma);
          const auto dl = static_cast<Bytes>(dl_per_session * jitter);
          const auto ul = static_cast<Bytes>(ul_per_session * jitter);
          report.offered_downlink += dl;
          report.offered_uplink += ul;

          std::string fingerprint;
          if (commune_rng.bernoulli(config_.fingerprint_visible_fraction)) {
            const auto& fps = dpi_.fingerprints(s);
            fingerprint = fps[commune_rng.uniform_index(fps.size())];
          } else {
            // Opaque traffic (pinned certs, exotic protocols): the DPI
            // cannot map it to a service.
            fingerprint = "sni:opaque-" + std::to_string(opaque_counter++);
          }
          gw.transfer(sid, t0 + 30, dl, ul, std::move(fingerprint));
          ++report.transfers;

          gw.delete_session(sid, t0 + 50);
        }
      }
    }
  }

  report.probe = probe.counters();
  if (timer.active()) {
    // DPI classification accounting: recorded from the probe's own
    // counters at the end, so the per-record hot path stays untouched.
    timer.add_items(report.sessions);
    timer.add_bytes(static_cast<std::uint64_t>(report.offered_downlink) +
                    static_cast<std::uint64_t>(report.offered_uplink));
    util::MetricsRegistry& reg = util::MetricsRegistry::global();
    reg.add("net.dpi.gtpu_records", report.probe.gtpu_records);
    reg.add("net.dpi.classified_bytes", report.probe.classified_bytes);
    reg.add("net.dpi.unclassified_bytes", report.probe.unclassified_bytes);
    reg.gauge("net.dpi.classified_fraction",
              report.probe.classified_fraction());
  }
  return report;
}

}  // namespace appscope::net
