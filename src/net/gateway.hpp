// appscope/net/gateway.hpp
//
// The packet-core gateway (GGSN for 3G, P-GW for 4G). In the paper's
// deployment the 3G and 4G gateways are co-located, with probes tapping the
// Gn and S5/S8 interfaces right at the gateway — so this class is where
// GTP-C and GTP-U events are surfaced to attached probes.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "net/gtp.hpp"
#include "net/probe.hpp"

namespace appscope::net {

class Gateway {
 public:
  /// `interface` names the tapped side (kGn → GGSN, kS5S8 → P-GW).
  explicit Gateway(CoreInterface interface);

  /// Attaches a passive probe; not owned, must outlive the gateway.
  void attach_probe(Probe* probe);

  /// Establishes a bearer (Create PDP Context / Create Session).
  /// Returns the assigned session id.
  SessionId create_session(SubscriberId subscriber, Timestamp time,
                           UserLocationInfo uli);

  /// ULI refresh (handover across RAT or Routing/Tracking Areas).
  /// Throws PreconditionError for unknown sessions.
  void location_update(SessionId session, Timestamp time, UserLocationInfo uli);

  /// Tunnels one traffic burst through the user plane.
  /// Throws PreconditionError for unknown sessions.
  void transfer(SessionId session, Timestamp time, Bytes downlink, Bytes uplink,
                std::string fingerprint);

  /// Tears the bearer down. Throws PreconditionError for unknown sessions.
  void delete_session(SessionId session, Timestamp time);

  std::size_t active_sessions() const noexcept { return sessions_.size(); }
  std::uint64_t total_sessions_created() const noexcept {
    return session_counter_;
  }
  CoreInterface interface() const noexcept { return interface_; }

 private:
  struct SessionState {
    SubscriberId subscriber = 0;
    UserLocationInfo uli;
  };

  void emit_gtpc(const GtpcEvent& event);

  CoreInterface interface_;
  std::vector<Probe*> probes_;
  std::unordered_map<SessionId, SessionState> sessions_;
  /// Session ids carry the gateway interface in the top byte so bearers of
  /// co-located gateways never collide at a probe tapping both.
  std::uint64_t session_counter_ = 0;
};

}  // namespace appscope::net
