#include "net/event.hpp"

#include <string>

#include "util/error.hpp"

namespace appscope::net {
namespace {

// net sits below io in the dependency graph, so the frame codec carries its
// own little-endian put/get helpers instead of using io::binary.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

[[noreturn]] void frame_error(const std::string& what) {
  throw util::InputError("event frame: " + what);
}

}  // namespace

std::vector<std::uint8_t> encode_event_frame(
    std::span<const ServiceEvent> events) {
  std::vector<std::uint8_t> out;
  out.reserve(kEventFrameHeaderBytes + events.size() * kEventWireBytes);
  put_u32(out, kEventFrameMagic);
  put_u16(out, kEventFrameVersion);
  put_u16(out, 0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(events.size()));
  put_u32(out, 0);  // reserved
  put_u64(out, 0);  // checksum placeholder, patched below
  for (const ServiceEvent& e : events) {
    put_u32(out, e.timestamp);
    put_u32(out, e.commune);
    put_u16(out, e.service);
    out.push_back(e.urbanization);
    out.push_back(e.flags);
    put_u64(out, e.downlink_bytes);
    put_u64(out, e.uplink_bytes);
  }
  const std::uint64_t checksum =
      fnv1a64(out.data() + kEventFrameHeaderBytes,
              out.size() - kEventFrameHeaderBytes);
  for (int i = 0; i < 8; ++i) {
    out[16 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(checksum >> (8 * i));
  }
  return out;
}

std::vector<ServiceEvent> decode_event_frame(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kEventFrameHeaderBytes) frame_error("truncated header");
  const std::uint8_t* p = bytes.data();
  if (get_u32(p) != kEventFrameMagic) frame_error("bad magic");
  const std::uint16_t version = get_u16(p + 4);
  if (version != kEventFrameVersion) {
    frame_error("unsupported version " + std::to_string(version));
  }
  const std::uint32_t count = get_u32(p + 8);
  const std::size_t payload = static_cast<std::size_t>(count) * kEventWireBytes;
  if (bytes.size() != kEventFrameHeaderBytes + payload) {
    frame_error(bytes.size() < kEventFrameHeaderBytes + payload
                    ? "truncated payload"
                    : "trailing bytes after payload");
  }
  const std::uint64_t stored_checksum = get_u64(p + 16);
  if (fnv1a64(p + kEventFrameHeaderBytes, payload) != stored_checksum) {
    frame_error("checksum mismatch");
  }
  std::vector<ServiceEvent> events(count);
  const std::uint8_t* r = p + kEventFrameHeaderBytes;
  for (ServiceEvent& e : events) {
    e.timestamp = get_u32(r);
    e.commune = get_u32(r + 4);
    e.service = get_u16(r + 8);
    e.urbanization = r[10];
    e.flags = r[11];
    e.downlink_bytes = get_u64(r + 12);
    e.uplink_bytes = get_u64(r + 20);
    r += kEventWireBytes;
  }
  return events;
}

}  // namespace appscope::net
