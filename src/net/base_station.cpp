#include "net/base_station.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace appscope::net {

BaseStationRegistry::BaseStationRegistry(const geo::Territory& territory,
                                         const DeploymentConfig& config) {
  APPSCOPE_REQUIRE(config.residents_per_cell > 0.0,
                   "DeploymentConfig: residents_per_cell must be positive");
  APPSCOPE_REQUIRE(config.min_cells_per_commune >= 1,
                   "DeploymentConfig: need at least one cell per commune");
  APPSCOPE_REQUIRE(config.lte_fraction >= 0.0 && config.lte_fraction <= 1.0,
                   "DeploymentConfig: lte_fraction must be in [0,1]");

  util::Rng rng(config.seed);
  by_commune_.resize(territory.size());
  for (const auto& commune : territory.communes()) {
    const auto wanted = static_cast<std::size_t>(
        std::round(static_cast<double>(commune.population) /
                   config.residents_per_cell));
    const std::size_t count = std::clamp(wanted, config.min_cells_per_commune,
                                         config.max_cells_per_commune);
    for (std::size_t k = 0; k < count; ++k) {
      BaseStation bs;
      bs.id = static_cast<CellId>(stations_.size());
      bs.commune = commune.id;
      const bool lte = commune.has_4g && rng.bernoulli(config.lte_fraction);
      bs.rat = lte ? Rat::kLte4g : Rat::kUmts3g;
      by_commune_[commune.id].push_back(bs.id);
      stations_.push_back(bs);
    }
    // Communes with 4G coverage must expose at least one LTE cell.
    if (commune.has_4g) {
      bool any_lte = false;
      for (const CellId c : by_commune_[commune.id]) {
        if (stations_[c].rat == Rat::kLte4g) {
          any_lte = true;
          break;
        }
      }
      if (!any_lte) stations_[by_commune_[commune.id].front()].rat = Rat::kLte4g;
    }
  }
}

const BaseStation& BaseStationRegistry::station(CellId id) const {
  APPSCOPE_REQUIRE(id < stations_.size(), "BaseStationRegistry: bad cell id");
  return stations_[id];
}

geo::CommuneId BaseStationRegistry::commune_of(CellId id) const {
  return station(id).commune;
}

const std::vector<CellId>& BaseStationRegistry::cells_in(
    geo::CommuneId commune) const {
  APPSCOPE_REQUIRE(commune < by_commune_.size(),
                   "BaseStationRegistry: bad commune id");
  return by_commune_[commune];
}

CellId BaseStationRegistry::pick_cell(geo::CommuneId commune, Rat preferred,
                                      std::uint64_t pick) const {
  const auto& cells = cells_in(commune);
  APPSCOPE_REQUIRE(!cells.empty(), "BaseStationRegistry: commune has no cells");
  // Deterministic round-robin over the cells with the preferred RAT.
  std::size_t matching = 0;
  for (const CellId c : cells) {
    if (stations_[c].rat == preferred) ++matching;
  }
  if (matching == 0) return cells[pick % cells.size()];
  std::size_t target = pick % matching;
  for (const CellId c : cells) {
    if (stations_[c].rat == preferred) {
      if (target == 0) return c;
      --target;
    }
  }
  return cells.front();  // unreachable
}

}  // namespace appscope::net
