#include "net/dpi.hpp"

#include <cctype>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace appscope::net {

std::string DpiEngine::canonical_token(std::string_view service_name) {
  std::string out;
  out.reserve(service_name.size());
  for (const char c : service_name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  APPSCOPE_REQUIRE(!out.empty(), "DpiEngine: unnameable service");
  return out;
}

DpiEngine::DpiEngine(const workload::ServiceCatalog& catalog) {
  by_service_.resize(catalog.size());
  for (workload::ServiceIndex s = 0; s < catalog.size(); ++s) {
    const std::string token = canonical_token(catalog[s].name);
    // One signature per fingerprinting technique, mirroring the paper's
    // "multiple fingerprinting techniques, each tailored to a traffic type".
    register_fingerprint("sni:" + token + ".com", s, DpiMatch::Technique::kSni);
    register_fingerprint("sni:api." + token + ".com", s,
                         DpiMatch::Technique::kSni);
    register_fingerprint("host:" + token + ".com", s,
                         DpiMatch::Technique::kHostSuffix);
    register_fingerprint("host:cdn." + token + ".net", s,
                         DpiMatch::Technique::kHostSuffix);
    register_fingerprint("heur:proto-" + token, s,
                         DpiMatch::Technique::kHeuristic);
  }
}

void DpiEngine::register_fingerprint(const std::string& fp,
                                     workload::ServiceIndex service,
                                     DpiMatch::Technique technique) {
  const Entry entry{service, technique};
  if (util::starts_with(fp, "host:")) {
    suffix_.emplace(fp.substr(5), entry);
  } else {
    exact_.emplace(fp, entry);
  }
  by_service_[service].push_back(fp);
}

std::optional<DpiMatch> DpiEngine::classify(std::string_view fingerprint) const {
  if (fingerprint.empty()) return std::nullopt;

  if (util::starts_with(fingerprint, "host:")) {
    // Suffix matching: "host:video.cdn.youtube.net" matches the registered
    // domain "cdn.youtube.net".
    std::string_view host = fingerprint.substr(5);
    while (!host.empty()) {
      const auto it = suffix_.find(std::string(host));
      if (it != suffix_.end()) {
        return DpiMatch{it->second.service, it->second.technique};
      }
      const std::size_t dot = host.find('.');
      if (dot == std::string_view::npos) break;
      host.remove_prefix(dot + 1);
    }
    return std::nullopt;
  }

  const auto it = exact_.find(std::string(fingerprint));
  if (it != exact_.end()) {
    return DpiMatch{it->second.service, it->second.technique};
  }
  return std::nullopt;
}

const std::vector<std::string>& DpiEngine::fingerprints(
    workload::ServiceIndex service) const {
  APPSCOPE_REQUIRE(service < by_service_.size(), "DpiEngine: bad service index");
  return by_service_[service];
}

}  // namespace appscope::net
