// appscope/net/gtp.hpp
//
// GPRS Tunneling Protocol records as seen by the passive probes.
//
// The probes inspect two planes (paper Sec. 2):
//  - GTP-C (control): PDP Context / EPS Bearer management messages carrying
//    the User Location Information (ULI) — this is how sessions are
//    geo-referenced;
//  - GTP-U (user): tunneled IP traffic, from which transport/application
//    metadata is extracted for DPI classification.
#pragma once

#include <string>

#include "net/types.hpp"

namespace appscope::net {

/// User Location Information: the cell the subscriber was last known at.
/// Updated only on session establishment and on RAT / routing-area changes,
/// which is why localization is coarse (~3 km median error in the paper).
struct UserLocationInfo {
  CellId cell = 0;
  Rat rat = Rat::kUmts3g;
};

enum class GtpcMessageType : std::uint8_t {
  /// 3G: Create PDP Context; 4G: Create Session (EPS bearer activation).
  kCreateSession = 0,
  /// ULI refresh on handover across RAT or Routing/Tracking Areas.
  kLocationUpdate = 1,
  /// Session teardown.
  kDeleteSession = 2,
};

/// A control-plane event observed on Gn or S5/S8.
struct GtpcEvent {
  GtpcMessageType type = GtpcMessageType::kCreateSession;
  SessionId session = 0;
  SubscriberId subscriber = 0;
  Timestamp time = 0;
  UserLocationInfo uli;
  CoreInterface interface = CoreInterface::kGn;
};

/// A user-plane volume record: one classified "chunk" of tunneled traffic
/// belonging to a session. Real probes export flow records on this
/// granularity; the simulator emits one record per session activity burst.
struct GtpuRecord {
  SessionId session = 0;
  Timestamp time = 0;
  Bytes downlink_bytes = 0;
  Bytes uplink_bytes = 0;
  /// Application-layer fingerprint material available to DPI (TLS SNI,
  /// HTTP host, protocol heuristics...). Empty when the flow is opaque.
  std::string fingerprint;
  CoreInterface interface = CoreInterface::kGn;
};

}  // namespace appscope::net
