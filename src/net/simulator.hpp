// appscope/net/simulator.hpp
//
// Event-level traffic simulator: drives subscriber IP sessions through the
// co-located GGSN / P-GW gateways so that attached probes observe the same
// GTP-C / GTP-U event stream a real deployment produces. This is the
// demonstration path of the measurement pipeline; the full-scale figures use
// the statistically equivalent streaming generator in synth/ (see DESIGN.md).
#pragma once

#include <cstdint>

#include "net/base_station.hpp"
#include "net/dpi.hpp"
#include "net/gateway.hpp"
#include "net/probe.hpp"
#include "workload/catalog.hpp"
#include "workload/population.hpp"

namespace appscope::net {

struct SessionSimConfig {
  std::uint64_t seed = 77;
  /// Average sessions per subscriber per week for each service, before the
  /// temporal profile distributes them over hours.
  double sessions_per_user_week = 4.0;
  /// Global scale on the session count (< 1 thins the event stream while
  /// preserving total volume: per-session bytes are scaled up accordingly).
  double session_thinning = 1.0;
  /// Fraction of sessions whose flows expose a DPI-usable fingerprint
  /// (paper: the operator's DPI classifies ~88% of traffic).
  double fingerprint_visible_fraction = 0.88;
  /// Lognormal sigma of per-session volume jitter (mean preserved).
  double volume_sigma = 0.8;
  /// Probability a session performs a mid-life ULI refresh (handover).
  double handover_probability = 0.05;
  /// ULI localization error (paper Sec. 2: ~3 km median error because the
  /// ULI is only refreshed on session establishment and RA/TA changes):
  /// with this probability the session is attributed to a neighbouring
  /// commune within `uli_error_radius_km` instead of the true one.
  double uli_error_probability = 0.2;
  double uli_error_radius_km = 4.0;
};

struct SessionSimReport {
  Probe::Counters probe;
  std::uint64_t sessions = 0;
  std::uint64_t transfers = 0;
  std::uint64_t handovers = 0;
  Bytes offered_downlink = 0;
  Bytes offered_uplink = 0;
};

class SessionSimulator {
 public:
  /// All references must outlive the simulator.
  SessionSimulator(const geo::Territory& territory,
                   const workload::SubscriberBase& subscribers,
                   const workload::ServiceCatalog& catalog,
                   const BaseStationRegistry& cells, const DpiEngine& dpi,
                   SessionSimConfig config);

  /// Simulates the full measurement week; every classified usage record the
  /// probe emits is delivered to `sink`. Returns pipeline statistics.
  SessionSimReport run(const Probe::Sink& sink);

 private:
  const geo::Territory& territory_;
  const workload::SubscriberBase& subscribers_;
  const workload::ServiceCatalog& catalog_;
  const BaseStationRegistry& cells_;
  const DpiEngine& dpi_;
  SessionSimConfig config_;
};

}  // namespace appscope::net
