#include "net/probe.hpp"

#include "util/error.hpp"

namespace appscope::net {

Probe::Probe(const BaseStationRegistry& cells, const DpiEngine& dpi)
    : cells_(cells), dpi_(dpi) {}

void Probe::set_sink(Sink sink) { sink_ = std::move(sink); }

void Probe::on_gtpc(const GtpcEvent& event) {
  ++counters_.gtpc_events;
  switch (event.type) {
    case GtpcMessageType::kCreateSession:
    case GtpcMessageType::kLocationUpdate:
      bearers_[event.session] = event.uli;
      break;
    case GtpcMessageType::kDeleteSession:
      bearers_.erase(event.session);
      break;
  }
}

void Probe::on_gtpu(const GtpuRecord& record) {
  ++counters_.gtpu_records;
  const auto it = bearers_.find(record.session);
  if (it == bearers_.end()) {
    ++counters_.orphan_records;
    return;
  }
  const UserLocationInfo& uli = it->second;

  UsageRecord usage;
  const auto match = dpi_.classify(record.fingerprint);
  if (match) {
    usage.service = match->service;
    counters_.classified_bytes += record.downlink_bytes + record.uplink_bytes;
    ++counters_.technique_hits[static_cast<std::size_t>(match->technique)];
  } else {
    counters_.unclassified_bytes += record.downlink_bytes + record.uplink_bytes;
  }
  usage.commune = cells_.commune_of(uli.cell);
  usage.week_hour = std::min<std::size_t>(record.time / kSecondsPerHour, 167);
  usage.downlink_bytes = record.downlink_bytes;
  usage.uplink_bytes = record.uplink_bytes;
  usage.rat = uli.rat;

  if (sink_) sink_(usage);
}

}  // namespace appscope::net
