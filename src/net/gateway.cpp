#include "net/gateway.hpp"

#include "util/error.hpp"

namespace appscope::net {

Gateway::Gateway(CoreInterface interface) : interface_(interface) {}

void Gateway::attach_probe(Probe* probe) {
  APPSCOPE_REQUIRE(probe != nullptr, "Gateway: null probe");
  probes_.push_back(probe);
}

void Gateway::emit_gtpc(const GtpcEvent& event) {
  for (Probe* p : probes_) p->on_gtpc(event);
}

SessionId Gateway::create_session(SubscriberId subscriber, Timestamp time,
                                  UserLocationInfo uli) {
  const SessionId id =
      (static_cast<SessionId>(interface_) << 56) | session_counter_++;
  sessions_.emplace(id, SessionState{subscriber, uli});

  GtpcEvent event;
  event.type = GtpcMessageType::kCreateSession;
  event.session = id;
  event.subscriber = subscriber;
  event.time = time;
  event.uli = uli;
  event.interface = interface_;
  emit_gtpc(event);
  return id;
}

void Gateway::location_update(SessionId session, Timestamp time,
                              UserLocationInfo uli) {
  const auto it = sessions_.find(session);
  APPSCOPE_REQUIRE(it != sessions_.end(), "Gateway: unknown session");
  it->second.uli = uli;

  GtpcEvent event;
  event.type = GtpcMessageType::kLocationUpdate;
  event.session = session;
  event.subscriber = it->second.subscriber;
  event.time = time;
  event.uli = uli;
  event.interface = interface_;
  emit_gtpc(event);
}

void Gateway::transfer(SessionId session, Timestamp time, Bytes downlink,
                       Bytes uplink, std::string fingerprint) {
  APPSCOPE_REQUIRE(sessions_.contains(session), "Gateway: unknown session");
  GtpuRecord record;
  record.session = session;
  record.time = time;
  record.downlink_bytes = downlink;
  record.uplink_bytes = uplink;
  record.fingerprint = std::move(fingerprint);
  record.interface = interface_;
  for (Probe* p : probes_) p->on_gtpu(record);
}

void Gateway::delete_session(SessionId session, Timestamp time) {
  const auto it = sessions_.find(session);
  APPSCOPE_REQUIRE(it != sessions_.end(), "Gateway: unknown session");

  GtpcEvent event;
  event.type = GtpcMessageType::kDeleteSession;
  event.session = session;
  event.subscriber = it->second.subscriber;
  event.time = time;
  event.interface = interface_;
  sessions_.erase(it);
  emit_gtpc(event);
}

}  // namespace appscope::net
