// appscope/net/base_station.hpp
//
// Radio deployment: cells mapped to the commune hosting them. The paper
// associates each base station to its commune and aggregates all ULI-mapped
// traffic at commune level; this registry is that mapping.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/territory.hpp"
#include "net/types.hpp"

namespace appscope::net {

struct BaseStation {
  CellId id = 0;
  geo::CommuneId commune = 0;
  Rat rat = Rat::kUmts3g;
};

struct DeploymentConfig {
  /// Residents served per cell (France 2016: ~50k cells / 66M ≈ 1 cell per
  /// ~1.3k inhabitants; we deploy per-commune proportionally).
  double residents_per_cell = 1500.0;
  /// Cells per commune bounds.
  std::size_t min_cells_per_commune = 1;
  std::size_t max_cells_per_commune = 64;
  /// Fraction of cells that are 4G in communes with 4G coverage.
  double lte_fraction = 0.6;
  std::uint64_t seed = 31;
};

/// The operator's radio network: cells indexed by dense CellId.
class BaseStationRegistry {
 public:
  /// Deploys cells over the territory (every commune gets at least one; RAT
  /// respects the commune's coverage flags).
  BaseStationRegistry(const geo::Territory& territory,
                      const DeploymentConfig& config);

  std::size_t size() const noexcept { return stations_.size(); }
  const BaseStation& station(CellId id) const;
  const std::vector<BaseStation>& stations() const noexcept { return stations_; }

  /// Commune hosting a cell (the probe's geo-referencing table).
  geo::CommuneId commune_of(CellId id) const;

  /// Cells deployed in a commune.
  const std::vector<CellId>& cells_in(geo::CommuneId commune) const;

  /// A cell of the commune with the requested RAT if available, otherwise
  /// any cell of the commune.
  CellId pick_cell(geo::CommuneId commune, Rat preferred,
                   std::uint64_t pick) const;

 private:
  std::vector<BaseStation> stations_;
  std::vector<std::vector<CellId>> by_commune_;
};

}  // namespace appscope::net
