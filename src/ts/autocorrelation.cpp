#include "ts/autocorrelation.hpp"

#include <algorithm>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace appscope::ts {

std::vector<double> autocorrelation(std::span<const double> series,
                                    std::size_t max_lag) {
  APPSCOPE_REQUIRE(series.size() > max_lag,
                   "autocorrelation: series must be longer than max_lag");
  const double m = stats::mean(series);
  double denom = 0.0;
  for (const double v : series) {
    const double d = v - m;
    denom += d * d;
  }
  APPSCOPE_REQUIRE(denom > 0.0, "autocorrelation: constant series");

  std::vector<double> out(max_lag + 1, 0.0);
  for (std::size_t k = 0; k <= max_lag; ++k) {
    double acc = 0.0;
    for (std::size_t t = 0; t + k < series.size(); ++t) {
      acc += (series[t] - m) * (series[t + k] - m);
    }
    out[k] = acc / denom;
  }
  return out;
}

std::size_t dominant_period(std::span<const double> series, std::size_t min_lag,
                            std::size_t max_lag) {
  APPSCOPE_REQUIRE(min_lag >= 1 && min_lag <= max_lag,
                   "dominant_period: invalid lag window");
  const std::vector<double> acf = autocorrelation(series, max_lag);
  std::size_t best = min_lag;
  for (std::size_t k = min_lag; k <= max_lag; ++k) {
    if (acf[k] > acf[best]) best = k;
  }
  return best;
}

double seasonality_strength(std::span<const double> series, std::size_t period) {
  APPSCOPE_REQUIRE(period >= 1 && period < series.size(),
                   "seasonality_strength: invalid period");
  const std::vector<double> acf = autocorrelation(series, period);
  return std::max(0.0, acf[period]);
}

}  // namespace appscope::ts
