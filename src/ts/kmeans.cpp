#include "ts/kmeans.hpp"

#include <limits>

#include "la/vector_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace appscope::ts {

namespace {

std::vector<std::vector<double>> kmeanspp_seed(
    const std::vector<std::vector<double>>& points, std::size_t k,
    util::Rng& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.uniform_index(points.size())]);
  std::vector<double> d2(points.size(), 0.0);
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : centroids) {
        best = std::min(best, la::squared_distance(points[i], c));
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All points coincide with chosen centroids; duplicate one.
      centroids.push_back(points[rng.uniform_index(points.size())]);
      continue;
    }
    double pick = rng.uniform() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      pick -= d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

KMeansResult kmeans_single(const std::vector<std::vector<double>>& points,
                           const KMeansOptions& opts, util::Rng& rng) {
  const std::size_t dim = points.front().size();
  KMeansResult result;
  result.centroids = kmeanspp_seed(points, opts.k, rng);
  result.assignments.assign(points.size(), 0);

  std::vector<std::size_t> prev;
  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    result.iterations = iter + 1;
    prev = result.assignments;

    // Assignment.
    result.inertia = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < opts.k; ++c) {
        const double d = la::squared_distance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.assignments[i] = best_c;
      result.inertia += best;
    }

    // Update.
    std::vector<std::vector<double>> sums(opts.k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(opts.k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t c = result.assignments[i];
      la::axpy(1.0, points[i], sums[c]);
      ++counts[c];
    }
    for (std::size_t c = 0; c < opts.k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        result.centroids[c] = points[rng.uniform_index(points.size())];
        continue;
      }
      la::scale(sums[c], 1.0 / static_cast<double>(counts[c]));
      result.centroids[c] = std::move(sums[c]);
    }

    if (result.assignments == prev && iter > 0) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace

KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    const KMeansOptions& opts) {
  APPSCOPE_REQUIRE(!points.empty(), "kmeans: no points");
  APPSCOPE_REQUIRE(opts.k >= 1 && opts.k <= points.size(),
                   "kmeans: k must be in [1, #points]");
  APPSCOPE_REQUIRE(opts.restarts >= 1, "kmeans: needs >= 1 restart");
  const std::size_t dim = points.front().size();
  APPSCOPE_REQUIRE(dim > 0, "kmeans: zero-dimensional points");
  for (const auto& p : points) {
    APPSCOPE_REQUIRE(p.size() == dim, "kmeans: ragged points");
  }

  util::Rng rng(opts.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < opts.restarts; ++r) {
    util::Rng run_rng = rng.fork(r);
    KMeansResult candidate = kmeans_single(points, opts, run_rng);
    if (candidate.inertia < best.inertia) best = std::move(candidate);
  }
  return best;
}

}  // namespace appscope::ts
