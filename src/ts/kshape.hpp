// appscope/ts/kshape.hpp
//
// k-Shape time-series clustering (Paparrizos & Gravano, SIGMOD 2015), the
// algorithm the paper uses to attempt grouping the 20 services by the shape
// of their weekly traffic series (Fig. 5).
//
// k-Shape alternates:
//   assignment  — each series joins the centroid with the smallest SBD;
//   refinement  — each centroid becomes the "shape extract" of its members:
//                 members are cross-correlation-aligned to the old centroid,
//                 and the new centroid is the dominant eigenvector of
//                 M = Q S Q, with S = Σ aligned xᵢ xᵢᵀ and Q = I - (1/n)·1.
#pragma once

#include <cstdint>
#include <vector>

namespace appscope::ts {

struct KShapeOptions {
  std::size_t k = 2;
  std::size_t max_iterations = 100;
  /// Seed for the deterministic random initial assignment.
  std::uint64_t seed = 7;
  /// z-normalize every series before clustering (the canonical setting).
  bool z_normalize_input = true;
  /// Use the ts::SeriesBatch spectrum cache for assignment and refinement:
  /// member spectra are computed once and persist across iterations,
  /// centroid spectra refresh once per refinement. false falls back to
  /// per-pair sbd() calls. Both paths are bitwise identical (they share the
  /// SBD kernel; property-tested) — the flag exists for that comparison and
  /// for memory-constrained callers.
  bool use_cached_spectra = true;
};

struct KShapeResult {
  /// assignments[i] in [0, k) is the cluster of series i.
  std::vector<std::size_t> assignments;
  /// k centroids, each z-normalized, same length as the input series.
  std::vector<std::vector<double>> centroids;
  /// Sum over series of SBD(series, its centroid).
  double inertia = 0.0;
  std::size_t iterations = 0;
  bool converged = false;

  std::size_t cluster_count() const noexcept { return centroids.size(); }
  /// Indices of the members of cluster `c`.
  std::vector<std::size_t> members(std::size_t c) const;
};

/// Clusters `series` (all equal length >= 2) into opts.k groups.
/// Requires 1 <= k <= series.size().
KShapeResult kshape(const std::vector<std::vector<double>>& series,
                    const KShapeOptions& opts);

/// Shape extraction for a single cluster: returns the z-normalized dominant
/// eigenvector of QSQ built from `members` aligned to `reference`.
/// If `reference` is empty or all-zero, members are used unaligned.
/// Exposed for tests and for incremental/streaming re-clustering.
std::vector<double> shape_extract(const std::vector<std::vector<double>>& members,
                                  const std::vector<double>& reference);

}  // namespace appscope::ts
