// appscope/ts/calendar.hpp
//
// Weekly calendar used by all temporal analyses. The paper's measurement
// week starts on Saturday, September 24, 2016; series are hourly, 168
// samples, hour index 0 = Saturday 00:00.
//
// The paper finds that activity peaks only appear at seven "topical times"
// (Sec. 4): weekend midday/evening, and working-day morning commute, morning
// break, midday, afternoon commute, and evening. This header encodes those
// anchors and the peak-to-topical-time matching rule.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace appscope::ts {

inline constexpr std::size_t kHoursPerDay = 24;
inline constexpr std::size_t kDaysPerWeek = 7;
inline constexpr std::size_t kHoursPerWeek = kHoursPerDay * kDaysPerWeek;  // 168

/// Day of week with the dataset's convention (index 0 = Saturday).
enum class Day : std::uint8_t {
  kSaturday = 0,
  kSunday = 1,
  kMonday = 2,
  kTuesday = 3,
  kWednesday = 4,
  kThursday = 5,
  kFriday = 6,
};

/// Hour within the measurement week, in [0, 168).
struct WeekHour {
  std::uint16_t index = 0;

  Day day() const noexcept { return static_cast<Day>(index / kHoursPerDay); }
  std::size_t hour_of_day() const noexcept { return index % kHoursPerDay; }
  bool is_weekend() const noexcept { return index < 2 * kHoursPerDay; }

  friend bool operator==(WeekHour a, WeekHour b) noexcept = default;
};

std::string_view day_name(Day d) noexcept;

/// Builds a WeekHour; throws PreconditionError if out of range.
WeekHour week_hour(std::size_t index);
WeekHour week_hour(Day day, std::size_t hour_of_day);

/// The paper's seven topical times (Fig. 6 rings).
enum class TopicalTime : std::uint8_t {
  kWeekendMidday = 0,      // ~1pm, Sat/Sun
  kWeekendEvening = 1,     // ~9pm, Sat/Sun
  kMorningCommute = 2,     // ~8am, Mon-Fri
  kMorningBreak = 3,       // ~10am, Mon-Fri
  kMidday = 4,             // ~1pm, Mon-Fri
  kAfternoonCommute = 5,   // ~6pm, Mon-Fri
  kEvening = 6,            // ~9pm, Mon-Fri
};

inline constexpr std::size_t kTopicalTimeCount = 7;

/// All topical times in ring order (Fig. 6).
std::array<TopicalTime, kTopicalTimeCount> all_topical_times() noexcept;

std::string_view topical_time_name(TopicalTime t) noexcept;

/// Canonical hour-of-day anchor of a topical time (13, 21, 8, 10, 13, 18, 21).
std::size_t topical_anchor_hour(TopicalTime t) noexcept;

/// True if the topical time belongs to the weekend rings.
bool topical_is_weekend(TopicalTime t) noexcept;

/// Maps a week hour to the topical time it belongs to, if any.
/// A peak at `wh` matches a topical time when the day class agrees
/// (weekend vs working day) and |hour_of_day - anchor| <= tolerance.
/// Anchors are disambiguated by smallest distance (commute 8h vs break 10h).
std::optional<TopicalTime> classify_topical(WeekHour wh,
                                            std::size_t tolerance_hours = 1);

/// All week-hour indices belonging to a topical time's interval
/// (anchor ± tolerance on each matching day).
std::vector<std::size_t> topical_interval_hours(TopicalTime t,
                                                std::size_t tolerance_hours = 1);

}  // namespace appscope::ts
