#include "ts/kshape.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "la/eigen.hpp"
#include "la/matrix.hpp"
#include "la/vector_ops.hpp"
#include "ts/sbd.hpp"
#include "ts/series_batch.hpp"
#include "ts/znorm.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace appscope::ts {

std::vector<std::size_t> KShapeResult::members(std::size_t c) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    if (assignments[i] == c) out.push_back(i);
  }
  return out;
}

namespace {

/// Eigen-decomposition core of shape extraction, shared by the public
/// per-pair entry point and the k-Shape batch path; `aligned_member(i, buf)`
/// writes member i into `buf` already aligned to the reference (both paths
/// produce bit-identical alignments, so the extracted shapes agree bitwise
/// too). One buffer is reused across all members — no per-member
/// allocations in the extraction loop.
template <typename AlignedFn>
std::vector<double> shape_extract_core(std::size_t member_count, std::size_t n,
                                       std::span<const double> probe,
                                       AlignedFn&& aligned_member) {
  la::Matrix s(n, n);
  std::vector<double> aligned;
  for (std::size_t mi = 0; mi < member_count; ++mi) {
    aligned_member(mi, aligned);
    znormalize_inplace(aligned);
    // S += aligned alignedᵀ (accumulate symmetric rank-1 update); each row
    // update is an elementwise axpy, which dispatches to la::simd.
    for (std::size_t i = 0; i < n; ++i) {
      const double ai = aligned[i];
      if (ai == 0.0) continue;
      la::axpy(ai, aligned, std::span<double>(&s(i, 0), n));
    }
  }

  // M = Q S Q with Q = I - (1/n) 1·1ᵀ. Multiplying by Q on both sides is
  // row- and column-mean centering, so M is assembled directly in O(n²):
  //   M(i, j) = S(i, j) - rmean(i) - cmean(j) + gmean.
  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<double> rmean(n, 0.0);
  std::vector<double> cmean(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = &s(i, 0);
    for (std::size_t j = 0; j < n; ++j) {
      rmean[i] += row[j];
      cmean[j] += row[j];
    }
  }
  double gmean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    rmean[i] *= inv_n;
    gmean += rmean[i];
  }
  gmean *= inv_n;
  for (std::size_t j = 0; j < n; ++j) cmean[j] *= inv_n;
  la::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* srow = &s(i, 0);
    double* mrow = &m(i, 0);
    for (std::size_t j = 0; j < n; ++j) {
      mrow[j] = srow[j] - rmean[i] - cmean[j] + gmean;
    }
  }

  la::PowerIterationOptions pio;
  pio.seed = 1234;
  const la::EigenPair top = la::power_iteration(m, pio);

  std::vector<double> centroid = top.vector;
  // Eigenvectors have arbitrary sign: pick the orientation closer to the
  // cluster members (compare squared distance to the first member).
  double dist_pos = 0.0;
  double dist_neg = 0.0;
  const std::vector<double> zprobe = znormalize(probe);
  for (std::size_t i = 0; i < n; ++i) {
    const double dp = zprobe[i] - centroid[i];
    const double dn = zprobe[i] + centroid[i];
    dist_pos += dp * dp;
    dist_neg += dn * dn;
  }
  if (dist_neg < dist_pos) {
    for (double& v : centroid) v = -v;
  }
  znormalize_inplace(centroid);
  return centroid;
}

/// Batch-path shape extraction: members live in `data` (spectra cached
/// across all k-Shape iterations), the reference is row `c` of `centroids`.
std::vector<double> shape_extract_batch(const SeriesBatch& data,
                                        const std::vector<std::size_t>& member_idx,
                                        const SeriesBatch& centroids,
                                        std::size_t c, SbdScratch& scratch) {
  const std::size_t n = data.length();
  const bool have_reference = centroids.norm(c) > 0.0;
  return shape_extract_core(
      member_idx.size(), n, data.series(member_idx.front()),
      [&](std::size_t mi, std::vector<double>& buf) {
        const std::span<const double> member = data.series(member_idx[mi]);
        if (!have_reference) {
          buf.assign(member.begin(), member.end());
          return;
        }
        const SbdResult r = sbd_pair(centroids, c, data, member_idx[mi], scratch);
        shift_series_into(member, r.shift, buf);
      });
}

}  // namespace

std::vector<double> shape_extract(const std::vector<std::vector<double>>& members,
                                  const std::vector<double>& reference) {
  APPSCOPE_REQUIRE(!members.empty(), "shape_extract: no members");
  const std::size_t n = members.front().size();
  APPSCOPE_REQUIRE(n >= 2, "shape_extract: series too short");
  for (const auto& m : members) {
    APPSCOPE_REQUIRE(m.size() == n, "shape_extract: ragged members");
  }

  const bool have_reference =
      reference.size() == n && la::norm2(reference) > 0.0;

  // Align members to the reference (old centroid), then z-normalize each —
  // shape extraction assumes zero-mean unit-variance rows.
  return shape_extract_core(
      members.size(), n, std::span<const double>(members.front()),
      [&](std::size_t mi, std::vector<double>& buf) {
        if (have_reference) {
          const SbdResult r = sbd(reference, members[mi]);
          shift_series_into(members[mi], r.shift, buf);
        } else {
          buf.assign(members[mi].begin(), members[mi].end());
        }
      });
}

KShapeResult kshape(const std::vector<std::vector<double>>& series,
                    const KShapeOptions& opts) {
  const util::ScopedSpan span("ts.kshape");
  util::StageTimer timer("ts.kshape");
  timer.add_items(series.size());
  APPSCOPE_REQUIRE(!series.empty(), "kshape: no series");
  APPSCOPE_REQUIRE(opts.k >= 1 && opts.k <= series.size(),
                   "kshape: k must be in [1, #series]");
  const std::size_t n = series.front().size();
  APPSCOPE_REQUIRE(n >= 2, "kshape: series must have >= 2 samples");
  for (const auto& s : series) {
    APPSCOPE_REQUIRE(s.size() == n, "kshape: all series must have equal length");
  }

  // Working copies, optionally z-normalized.
  std::vector<std::vector<double>> data;
  data.reserve(series.size());
  for (const auto& s : series) {
    data.push_back(opts.z_normalize_input
                       ? znormalize(std::span<const double>(s))
                       : s);
  }

  // Batch mode: member spectra computed once here and reused by every
  // assignment and refinement across all iterations; centroid rows refresh
  // via set_series as centroids change.
  const bool batch_mode = opts.use_cached_spectra;
  std::optional<SeriesBatch> data_batch;
  std::optional<SeriesBatch> centroid_batch;
  if (batch_mode) {
    data_batch.emplace(data);
    centroid_batch.emplace(opts.k, n);
  }

  util::Rng rng(opts.seed);
  KShapeResult result;
  result.assignments.resize(data.size());
  for (auto& a : result.assignments) {
    a = static_cast<std::size_t>(rng.uniform_index(opts.k));
  }
  // Guarantee every cluster starts non-empty (place one distinct series in
  // each cluster deterministically).
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  for (std::size_t c = 0; c < opts.k; ++c) result.assignments[order[c]] = c;

  result.centroids.assign(opts.k, std::vector<double>(n, 0.0));

  std::vector<std::size_t> prev_assignments;
  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Refinement: extract a shape per non-empty cluster. Clusters are
    // independent of each other, so they refine in parallel (each touching
    // only its own centroid-batch row).
    std::vector<std::vector<std::size_t>> member_idx(opts.k);
    for (std::size_t i = 0; i < data.size(); ++i) {
      member_idx[result.assignments[i]].push_back(i);
    }
    {
      const util::ScopedSpan refine_span("ts.kshape.refine");
      util::parallel_for(0, opts.k, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          if (member_idx[c].empty()) continue;  // re-seeded after assignment
          if (batch_mode) {
            result.centroids[c] = shape_extract_batch(
                *data_batch, member_idx[c], *centroid_batch, c, sbd_scratch());
            centroid_batch->set_series(c, result.centroids[c]);
          } else {
            std::vector<std::vector<double>> members;
            members.reserve(member_idx[c].size());
            for (const std::size_t i : member_idx[c]) members.push_back(data[i]);
            result.centroids[c] = shape_extract(members, result.centroids[c]);
          }
        }
      });
    }

    // Assignment: nearest centroid by SBD. Each series' N × k distance scan
    // is independent; the inertia fold stays serial (in series order) so the
    // sum is bitwise identical at any thread count.
    prev_assignments = result.assignments;
    std::vector<double> best_dist(data.size(), 0.0);
    constexpr std::size_t kSeriesPerShard = 16;
    util::parallel_for(
        0, data.size(), kSeriesPerShard, [&](std::size_t lo, std::size_t hi) {
          SbdScratch& scratch = sbd_scratch();
          for (std::size_t i = lo; i < hi; ++i) {
            double best = std::numeric_limits<double>::infinity();
            std::size_t best_c = prev_assignments[i];
            for (std::size_t c = 0; c < opts.k; ++c) {
              const double cnorm = batch_mode
                                       ? centroid_batch->norm(c)
                                       : la::norm2(result.centroids[c]);
              if (cnorm == 0.0) continue;
              const double d =
                  batch_mode
                      ? sbd_pair_distance(*centroid_batch, c, *data_batch, i,
                                          scratch)
                      : sbd_distance(result.centroids[c], data[i]);
              if (d < best) {
                best = d;
                best_c = c;
              }
            }
            result.assignments[i] = best_c;
            best_dist[i] = best;
          }
        });
    result.inertia = 0.0;
    for (const double d : best_dist) result.inertia += d;

    // Re-seed empty clusters with the series farthest from its centroid.
    for (std::size_t c = 0; c < opts.k; ++c) {
      bool empty = true;
      for (const std::size_t a : result.assignments) {
        if (a == c) {
          empty = false;
          break;
        }
      }
      if (!empty) continue;
      double worst = -1.0;
      std::size_t worst_i = 0;
      SbdScratch& scratch = sbd_scratch();
      for (std::size_t i = 0; i < data.size(); ++i) {
        const auto owner = result.assignments[i];
        const double onorm = batch_mode ? centroid_batch->norm(owner)
                                        : la::norm2(result.centroids[owner]);
        if (onorm == 0.0) continue;
        const double d = batch_mode
                             ? sbd_pair_distance(*centroid_batch, owner,
                                                 *data_batch, i, scratch)
                             : sbd_distance(result.centroids[owner], data[i]);
        if (d > worst) {
          worst = d;
          worst_i = i;
        }
      }
      result.assignments[worst_i] = c;
      result.centroids[c] = data[worst_i];
      // Keep the centroid batch in sync immediately: a later empty cluster
      // in this same loop may measure distances against cluster c.
      if (batch_mode) centroid_batch->set_series(c, data[worst_i]);
    }

    if (result.assignments == prev_assignments) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace appscope::ts
