// appscope/ts/time_series.hpp
//
// A uniformly-sampled time series (hourly in this library) with arithmetic,
// resampling, smoothing, and weekly-calendar helpers.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "ts/calendar.hpp"

namespace appscope::ts {

class TimeSeries {
 public:
  TimeSeries() = default;

  /// Takes ownership of hourly samples; `label` names the series in reports.
  explicit TimeSeries(std::vector<double> values, std::string label = {});

  /// Zero-filled series of `size` samples.
  static TimeSeries zeros(std::size_t size, std::string label = {});

  std::size_t size() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }
  const std::string& label() const noexcept { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  double operator[](std::size_t i) const noexcept { return values_[i]; }
  double& operator[](std::size_t i) noexcept { return values_[i]; }
  double at(std::size_t i) const;

  std::span<const double> values() const noexcept { return values_; }
  std::vector<double>& mutable_values() noexcept { return values_; }

  double sum() const noexcept;
  double mean() const;
  double max() const;
  double min() const;

  /// Element-wise arithmetic; shape must match.
  TimeSeries& operator+=(const TimeSeries& other);
  TimeSeries& operator-=(const TimeSeries& other);
  TimeSeries& operator*=(double alpha) noexcept;
  TimeSeries operator+(const TimeSeries& other) const;
  TimeSeries operator-(const TimeSeries& other) const;
  TimeSeries operator*(double alpha) const;

  /// Scales so the series sums to 1; requires a positive sum.
  TimeSeries normalized_to_unit_sum() const;

  /// Centered moving average with window = 2*half_window + 1 (edges use the
  /// available window).
  TimeSeries moving_average(std::size_t half_window) const;

  /// Downsamples by integer factor (mean of each bucket); size must divide.
  TimeSeries downsample(std::size_t factor) const;

  /// Sub-range copy [begin, begin+count).
  TimeSeries slice(std::size_t begin, std::size_t count) const;

  /// For 168-sample weekly series: sum over the hours of one day.
  double day_total(Day day) const;

  /// For 168-sample weekly series: mean profile over days -> 24 samples.
  /// `weekend` selects Sat/Sun vs Mon-Fri days.
  std::vector<double> mean_daily_profile(bool weekend) const;

 private:
  std::vector<double> values_;
  std::string label_;
};

/// Builds a weekly (168 h) series from any callable hour -> value.
template <typename F>
TimeSeries make_weekly(F&& f, std::string label = {}) {
  std::vector<double> v(kHoursPerWeek);
  for (std::size_t h = 0; h < kHoursPerWeek; ++h) v[h] = f(h);
  return TimeSeries(std::move(v), std::move(label));
}

}  // namespace appscope::ts
