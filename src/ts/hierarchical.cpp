#include "ts/hierarchical.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace appscope::ts {

namespace {

/// Union of leaves under each active cluster, tracked explicitly so any
/// linkage can be evaluated from the pairwise leaf distances.
struct ActiveCluster {
  std::size_t id = 0;
  std::vector<std::size_t> leaves;
};

double linkage_distance(const DistanceMatrix& d, const ActiveCluster& a,
                        const ActiveCluster& b, Linkage linkage) {
  double best = linkage == Linkage::kSingle
                    ? std::numeric_limits<double>::infinity()
                    : 0.0;
  double sum = 0.0;
  for (const std::size_t i : a.leaves) {
    for (const std::size_t j : b.leaves) {
      const double dist = d(i, j);
      switch (linkage) {
        case Linkage::kSingle: best = std::min(best, dist); break;
        case Linkage::kComplete: best = std::max(best, dist); break;
        case Linkage::kAverage: sum += dist; break;
      }
    }
  }
  if (linkage == Linkage::kAverage) {
    return sum / static_cast<double>(a.leaves.size() * b.leaves.size());
  }
  return best;
}

}  // namespace

Dendrogram hierarchical_cluster(const DistanceMatrix& d, Linkage linkage) {
  APPSCOPE_REQUIRE(!d.empty(), "hierarchical_cluster: no items");
  const std::size_t n = d.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      APPSCOPE_REQUIRE(d(i, j) >= 0.0,
                       "hierarchical_cluster: negative distance");
    }
  }

  Dendrogram out;
  out.leaf_count = n;
  std::vector<ActiveCluster> active;
  active.reserve(n);
  for (std::size_t i = 0; i < n; ++i) active.push_back({i, {i}});

  std::size_t next_id = n;
  while (active.size() > 1) {
    std::size_t best_a = 0;
    std::size_t best_b = 1;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < active.size(); ++a) {
      for (std::size_t b = a + 1; b < active.size(); ++b) {
        const double dd = linkage_distance(d, active[a], active[b], linkage);
        if (dd < best_d) {
          best_d = dd;
          best_a = a;
          best_b = b;
        }
      }
    }
    MergeStep step;
    step.left = active[best_a].id;
    step.right = active[best_b].id;
    step.parent = next_id++;
    step.distance = best_d;
    out.merges.push_back(step);

    ActiveCluster merged;
    merged.id = step.parent;
    merged.leaves = active[best_a].leaves;
    merged.leaves.insert(merged.leaves.end(), active[best_b].leaves.begin(),
                         active[best_b].leaves.end());
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(best_b));
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(best_a));
    active.push_back(std::move(merged));
  }
  return out;
}

Dendrogram hierarchical_cluster(const std::vector<std::vector<double>>& items,
                                const DistanceFn& dist, Linkage linkage) {
  APPSCOPE_REQUIRE(!items.empty(), "hierarchical_cluster: no items");
  const std::size_t n = items.size();

  // Pairwise leaf distances, computed once. The O(n²) fill dominates for
  // expensive distances (SBD over commune series), so rows are sharded
  // across the pool; entries are independent, results thread-count
  // invariant.
  DistanceMatrix d(n);
  constexpr std::size_t kRowsPerShard = 4;
  util::parallel_for(0, n, kRowsPerShard, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        d(i, j) = dist(items[i], items[j]);
      }
    }
  });
  d.symmetrize_upper();
  return hierarchical_cluster(d, linkage);
}

std::vector<std::size_t> Dendrogram::cut_at(double cut) const {
  // Union-find over leaves, applying merges with distance <= cut.
  std::vector<std::size_t> parent(leaf_count + merges.size() + 1);
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& m : merges) {
    if (m.distance > cut) continue;
    parent[find(m.left)] = m.parent;
    parent[find(m.right)] = m.parent;
  }
  // Dense ids for leaf roots.
  std::vector<std::size_t> assignments(leaf_count);
  std::vector<std::size_t> roots;
  for (std::size_t leaf = 0; leaf < leaf_count; ++leaf) {
    const std::size_t root = find(leaf);
    auto it = std::find(roots.begin(), roots.end(), root);
    if (it == roots.end()) {
      roots.push_back(root);
      it = roots.end() - 1;
    }
    assignments[leaf] = static_cast<std::size_t>(it - roots.begin());
  }
  return assignments;
}

std::vector<std::size_t> Dendrogram::cut_to_k(std::size_t k) const {
  APPSCOPE_REQUIRE(k >= 1 && k <= leaf_count, "cut_to_k: k out of range");
  // Applying the first (leaf_count - k) merges leaves exactly k clusters.
  const std::size_t apply = leaf_count - k;
  if (apply == 0) return cut_at(-1.0);
  // Merge distances are non-decreasing for single/complete/average linkage
  // up to ties; cut just above the last applied merge by replaying merges
  // directly instead of by distance.
  std::vector<std::size_t> parent(leaf_count + merges.size() + 1);
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t i = 0; i < apply; ++i) {
    parent[find(merges[i].left)] = merges[i].parent;
    parent[find(merges[i].right)] = merges[i].parent;
  }
  std::vector<std::size_t> assignments(leaf_count);
  std::vector<std::size_t> roots;
  for (std::size_t leaf = 0; leaf < leaf_count; ++leaf) {
    const std::size_t root = find(leaf);
    auto it = std::find(roots.begin(), roots.end(), root);
    if (it == roots.end()) {
      roots.push_back(root);
      it = roots.end() - 1;
    }
    assignments[leaf] = static_cast<std::size_t>(it - roots.begin());
  }
  return assignments;
}

std::pair<double, std::size_t> Dendrogram::largest_merge_gap() const {
  APPSCOPE_REQUIRE(!merges.empty(), "largest_merge_gap: degenerate dendrogram");
  double best_gap = 0.0;
  std::size_t best_index = 0;
  for (std::size_t i = 1; i < merges.size(); ++i) {
    const double gap = merges[i].distance - merges[i - 1].distance;
    if (gap > best_gap) {
      best_gap = gap;
      best_index = i - 1;
    }
  }
  return {best_gap, best_index};
}

}  // namespace appscope::ts
