#include "ts/series_batch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "la/fft.hpp"
#include "la/simd.hpp"
#include "la/vector_ops.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace appscope::ts {

bool sbd_uses_spectral(std::size_t length) noexcept {
  return length > kSbdSpectralThreshold;
}

namespace {

/// Grows a scratch buffer (never shrinks — callers slice the prefix they
/// need), recording new capacity under ts.sbd.scratch_bytes.
template <typename V>
void grow(V& v, std::size_t n) {
  using T = typename V::value_type;
  if (v.size() >= n) return;
  const std::size_t old_cap = v.capacity();
  v.resize(n);
  if (v.capacity() > old_cap && util::MetricsRegistry::enabled()) {
    util::MetricsRegistry::global().add(
        "ts.sbd.scratch_bytes",
        static_cast<std::uint64_t>((v.capacity() - old_cap) * sizeof(T)));
  }
}

/// Completes the first-max-wins scan over a contiguous value range laid out
/// in scan order: (max value, first attaining index, the element itself).
/// Equivalent to `if (v > best) ...` per element: max_value() ignores NaNs
/// exactly like `>` does, ties at +/-0.0 compare == so the first attaining
/// index matches, and re-reading the element reproduces its zero sign.
struct ScanHit {
  bool found;
  std::size_t index;
  double value;
};

ScanHit scan_max(const la::simd::Kernels& kernels, const double* values,
                 std::size_t n) {
  const double best = kernels.max_value(values, n);
  if (best == -std::numeric_limits<double>::infinity()) {
    // Empty, all-NaN, or a -inf maximum: the scalar scan would never have
    // updated its running best past -inf (`-inf > -inf` is false).
    return {false, 0, best};
  }
  const std::size_t i = kernels.find_first_equal(values, n, best);
  return {true, i, values[i]};
}

}  // namespace

SeriesBatch::SeriesBatch(const std::vector<std::vector<double>>& series)
    : count_(series.size()) {
  APPSCOPE_REQUIRE(!series.empty(), "SeriesBatch: no series");
  length_ = series.front().size();
  APPSCOPE_REQUIRE(length_ >= 1, "SeriesBatch: empty series");
  for (const auto& s : series) {
    APPSCOPE_REQUIRE(s.size() == length_, "SeriesBatch: ragged series");
  }
  if (sbd_uses_spectral(length_)) {
    padded_ = la::next_pow2(2 * length_ - 1);
    spec_stride_ = padded_ / 2 + 1;
  }
  row_pitch_ = la::padded_count<double>(length_);
  spec_pitch_ = la::padded_count<std::complex<double>>(spec_stride_);
  values_.resize(count_ * row_pitch_);
  norms_.resize(count_);
  spectra_.resize(count_ * spec_pitch_);
  for (std::size_t i = 0; i < count_; ++i) {
    std::copy(series[i].begin(), series[i].end(),
              values_.begin() + static_cast<std::ptrdiff_t>(i * row_pitch_));
  }
  // Per-row norm + forward transform; rows are independent, so precompute in
  // parallel (results thread-count invariant).
  constexpr std::size_t kRowsPerShard = 16;
  util::parallel_for(0, count_, kRowsPerShard,
                     [this](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) refresh_row(i);
                     });
  if (util::MetricsRegistry::enabled()) {
    util::MetricsRegistry::global().add("ts.series_batch.builds");
    util::MetricsRegistry::global().add(
        "ts.series_batch.bytes",
        static_cast<std::uint64_t>(values_.size() * sizeof(double) +
                                   norms_.size() * sizeof(double) +
                                   spectra_.size() *
                                       sizeof(std::complex<double>)));
  }
}

SeriesBatch::SeriesBatch(std::size_t count, std::size_t length)
    : count_(count), length_(length) {
  APPSCOPE_REQUIRE(count >= 1 && length >= 1, "SeriesBatch: empty shape");
  if (sbd_uses_spectral(length_)) {
    padded_ = la::next_pow2(2 * length_ - 1);
    spec_stride_ = padded_ / 2 + 1;
  }
  row_pitch_ = la::padded_count<double>(length_);
  spec_pitch_ = la::padded_count<std::complex<double>>(spec_stride_);
  // All-zero rows: norms 0, spectra 0 — never read, because the SBD kernel
  // returns early on a zero norm.
  values_.resize(count_ * row_pitch_, 0.0);
  norms_.resize(count_, 0.0);
  spectra_.resize(count_ * spec_pitch_);
}

void SeriesBatch::set_series(std::size_t i, std::span<const double> values) {
  APPSCOPE_REQUIRE(i < count_, "SeriesBatch: row out of range");
  APPSCOPE_REQUIRE(values.size() == length_, "SeriesBatch: length mismatch");
  std::copy(values.begin(), values.end(),
            values_.begin() + static_cast<std::ptrdiff_t>(i * row_pitch_));
  refresh_row(i);
}

void SeriesBatch::refresh_row(std::size_t i) {
  const std::span<const double> row = series(i);
  norms_[i] = la::norm2(row);
  if (padded_ != 0) {
    const la::RealFftPlan& plan = la::RealFftPlan::plan_for(padded_);
    plan.forward(row, {spectra_.data() + i * spec_pitch_, spec_stride_});
  }
}

SbdScratch& sbd_scratch() {
  static thread_local SbdScratch scratch;
  return scratch;
}

namespace detail {

SbdResult sbd_spans(std::span<const double> x, double norm_x,
                    std::span<const std::complex<double>> spec_x,
                    std::span<const double> y, double norm_y,
                    std::span<const std::complex<double>> spec_y,
                    SbdScratch& scratch) {
  const std::size_t m = x.size();
  APPSCOPE_REQUIRE(m != 0 && m == y.size(), "sbd: equal non-zero lengths required");
  const std::ptrdiff_t base = static_cast<std::ptrdiff_t>(m) - 1;

  SbdResult result;
  const double denom = norm_x * norm_y;
  if (denom == 0.0) {
    // Degenerate (all-zero) series: NCC is identically zero; keep the
    // seed convention (first lag wins the scan of an all-zero sequence).
    result.ncc = 0.0;
    result.distance = 1.0;
    result.shift = -base;
    return result;
  }

  const std::size_t out_len = 2 * m - 1;
  std::size_t best_k = 0;
  double best_v = -std::numeric_limits<double>::infinity();
  const la::simd::Kernels& kernels = la::simd::active();

  if (!sbd_uses_spectral(m)) {
    // Direct evaluation, same arithmetic as la::cross_correlation_direct.
    // The per-lag dot products are sequential reductions and stay scalar
    // (vectorizing them would reorder the additions and change bits).
    grow(scratch.corr, out_len);
    double* corr = scratch.corr.data();
    for (std::size_t k = 0; k < out_len; ++k) {
      const std::ptrdiff_t s = static_cast<std::ptrdiff_t>(k) - base;
      const std::size_t j_lo = s < 0 ? static_cast<std::size_t>(-s) : 0;
      const std::size_t j_hi =
          std::min(m, s < 0 ? m : m - static_cast<std::size_t>(s));
      double acc = 0.0;
      for (std::size_t j = j_lo; j < j_hi; ++j) {
        acc += x[static_cast<std::size_t>(static_cast<std::ptrdiff_t>(j) + s)] *
               y[j];
      }
      corr[k] = acc;
    }
    const ScanHit hit = scan_max(kernels, corr, out_len);
    if (hit.found) {
      best_k = hit.index;
      best_v = hit.value;
    }
  } else {
    // Spectral path: conjugate product of the two spectra + one inverse
    // transform. Cached spectra (from SeriesBatch) are bit-identical to the
    // fresh ones computed here, so both entry points agree bitwise.
    const std::size_t n = la::next_pow2(out_len);
    const la::RealFftPlan& plan = la::RealFftPlan::plan_for(n);
    const std::size_t sp = plan.spectrum_size();
    std::span<const std::complex<double>> fx = spec_x;
    if (fx.empty()) {
      grow(scratch.spec_x, sp);
      plan.forward(x, {scratch.spec_x.data(), sp});
      fx = {scratch.spec_x.data(), sp};
    }
    std::span<const std::complex<double>> fy = spec_y;
    if (fy.empty()) {
      grow(scratch.spec_y, sp);
      plan.forward(y, {scratch.spec_y.data(), sp});
      fy = {scratch.spec_y.data(), sp};
    }
    grow(scratch.product, sp);
    grow(scratch.corr, n);
    std::complex<double>* product = scratch.product.data();
    kernels.conj_multiply(fx.data(), fy.data(), product, sp);
    plan.inverse({product, sp}, {scratch.corr.data(), n});
    // The circular correlation holds lag s at index s (s >= 0) or n + s
    // (s < 0), so the direct layout's k order maps to two contiguous
    // ranges: corr[n - base, n) for k in [0, base), then corr[0, m) for
    // k in [base, out_len). Scan each with the vector kernels; preferring
    // the first range on a tie reproduces the first-max-wins k order.
    const double* corr = scratch.corr.data();
    const std::size_t neg = static_cast<std::size_t>(base);  // negative lags
    const double max_neg = kernels.max_value(corr + (n - neg), neg);
    const double max_pos = kernels.max_value(corr, m);
    const double best = max_pos > max_neg ? max_pos : max_neg;
    if (best != -std::numeric_limits<double>::infinity()) {
      const std::size_t i1 = kernels.find_first_equal(corr + (n - neg), neg, best);
      if (i1 < neg) {
        best_k = i1;
        best_v = corr[n - neg + i1];
      } else {
        const std::size_t i2 = kernels.find_first_equal(corr, m, best);
        best_k = neg + i2;
        best_v = corr[i2];
      }
    }
  }

  result.ncc = std::clamp(best_v / denom, -1.0, 1.0);
  result.distance = 1.0 - result.ncc;
  result.shift = static_cast<std::ptrdiff_t>(best_k) - base;
  return result;
}

}  // namespace detail

SbdResult sbd_pair(const SeriesBatch& x, std::size_t i, const SeriesBatch& y,
                   std::size_t j, SbdScratch& scratch) {
  APPSCOPE_REQUIRE(i < x.size() && j < y.size(), "sbd_pair: row out of range");
  APPSCOPE_REQUIRE(x.length() == y.length(), "sbd_pair: length mismatch");
  std::span<const std::complex<double>> sx;
  std::span<const std::complex<double>> sy;
  if (x.spectral()) sx = x.spectrum(i);
  if (y.spectral()) sy = y.spectrum(j);
  return detail::sbd_spans(x.series(i), x.norm(i), sx, y.series(j), y.norm(j),
                           sy, scratch);
}

double sbd_pair_distance(const SeriesBatch& x, std::size_t i,
                         const SeriesBatch& y, std::size_t j,
                         SbdScratch& scratch) {
  return sbd_pair(x, i, y, j, scratch).distance;
}

DistanceMatrix sbd_distance_matrix(const SeriesBatch& batch) {
  const std::size_t n = batch.size();
  APPSCOPE_REQUIRE(n >= 1, "sbd_distance_matrix: no series");
  const util::ScopedSpan span("ts.sbd_matrix");
  util::StageTimer timer("ts.sbd_matrix");
  timer.add_items(n * (n - 1) / 2);  // pairwise distances computed

  DistanceMatrix d(n);
  // Row shards; later rows have shorter upper triangles, so a small grain
  // keeps the shards balanced. Each worker reuses its own scratch.
  constexpr std::size_t kRowsPerShard = 4;
  util::parallel_for(0, n, kRowsPerShard, [&](std::size_t lo, std::size_t hi) {
    SbdScratch& scratch = sbd_scratch();
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        d(i, j) = sbd_pair_distance(batch, i, batch, j, scratch);
      }
    }
  });
  d.symmetrize_upper();
  return d;
}

}  // namespace appscope::ts
