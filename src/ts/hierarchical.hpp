// appscope/ts/hierarchical.hpp
//
// Agglomerative hierarchical clustering over an arbitrary distance
// function. Complements k-Shape in the Fig. 5 analysis: the paper backs its
// "no consistent grouping" conclusion with a manual examination of cluster
// structure; a dendrogram makes that examination programmatic — if a clean
// grouping existed, cutting the tree would reveal a large merge-distance
// gap, and it does not.
#pragma once

#include <string>
#include <vector>

#include "ts/cluster_quality.hpp"
#include "ts/distance_matrix.hpp"

namespace appscope::ts {

enum class Linkage : std::uint8_t {
  kSingle = 0,    // min pairwise distance between clusters
  kComplete = 1,  // max pairwise distance
  kAverage = 2,   // mean pairwise distance (UPGMA)
};

/// One agglomeration step: clusters `left` and `right` merged at `distance`
/// into a new cluster with id `parent`.
struct MergeStep {
  std::size_t left = 0;
  std::size_t right = 0;
  std::size_t parent = 0;
  double distance = 0.0;
};

struct Dendrogram {
  /// n-1 merges, ordered by increasing step; leaf ids are [0, n), internal
  /// node ids continue from n.
  std::vector<MergeStep> merges;
  std::size_t leaf_count = 0;

  /// Flat clustering obtained by stopping after the merges with distance
  /// <= `cut`; returns leaf assignments with dense cluster ids.
  std::vector<std::size_t> cut_at(double cut) const;

  /// Flat clustering with exactly k clusters (k in [1, leaf_count]).
  std::vector<std::size_t> cut_to_k(std::size_t k) const;

  /// Largest gap between consecutive merge distances; a clean cluster
  /// structure shows a dominant gap, an unstructured set does not.
  /// Returns (gap, merge index after which the gap occurs).
  std::pair<double, std::size_t> largest_merge_gap() const;
};

/// Builds the dendrogram from precomputed pairwise distances (symmetric,
/// non-negative, zero diagonal). O(n^3) agglomeration with the naive
/// Lance-Williams update — fine for the 20-series use case and beyond
/// (hundreds of items). Callers that already paid for an SBD matrix
/// (ts::sbd_distance_matrix over a SeriesBatch) pass it here directly
/// instead of recomputing every pair through a distance functor.
Dendrogram hierarchical_cluster(const DistanceMatrix& distances,
                                Linkage linkage = Linkage::kAverage);

/// Convenience overload: fills the pairwise matrix from `dist` (row-sharded
/// on the global pool) and forwards to the matrix overload.
Dendrogram hierarchical_cluster(const std::vector<std::vector<double>>& items,
                                const DistanceFn& dist,
                                Linkage linkage = Linkage::kAverage);

}  // namespace appscope::ts
