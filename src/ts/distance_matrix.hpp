// appscope/ts/distance_matrix.hpp
//
// Flat row-major symmetric distance matrix. Replaces the seed's
// vector<vector<double>>: one contiguous allocation instead of n+1, row
// accesses are a multiply instead of a pointer chase, and whole-matrix
// comparison (the bitwise-determinism property tests) is a single memcmp-
// style pass over the cells.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace appscope::ts {

class DistanceMatrix {
 public:
  DistanceMatrix() = default;
  /// n x n matrix of zeros.
  explicit DistanceMatrix(std::size_t n) : n_(n), cells_(n * n, 0.0) {}

  /// Number of items (rows == columns).
  std::size_t size() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }

  double& operator()(std::size_t i, std::size_t j) noexcept {
    return cells_[i * n_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const noexcept {
    return cells_[i * n_ + j];
  }

  std::span<double> row(std::size_t i) noexcept {
    return {cells_.data() + i * n_, n_};
  }
  std::span<const double> row(std::size_t i) const noexcept {
    return {cells_.data() + i * n_, n_};
  }

  /// Mirrors the upper triangle into the lower one (fills d(j,i) = d(i,j)
  /// for j > i). Builders fill only the upper triangle in parallel, then
  /// symmetrize serially.
  void symmetrize_upper() noexcept {
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = i + 1; j < n_; ++j) {
        cells_[j * n_ + i] = cells_[i * n_ + j];
      }
    }
  }

  const std::vector<double>& cells() const noexcept { return cells_; }

  friend bool operator==(const DistanceMatrix&, const DistanceMatrix&) = default;

 private:
  std::size_t n_ = 0;
  std::vector<double> cells_;
};

}  // namespace appscope::ts
