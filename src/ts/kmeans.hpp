// appscope/ts/kmeans.hpp
//
// Euclidean k-means with k-means++ seeding. Serves as the baseline
// clustering algorithm against k-Shape in the Fig. 5 ablation: the paper's
// "no good k exists" conclusion should hold regardless of the clusterer.
#pragma once

#include <cstdint>
#include <vector>

namespace appscope::ts {

struct KMeansOptions {
  std::size_t k = 2;
  std::size_t max_iterations = 200;
  std::uint64_t seed = 7;
  /// Number of k-means++ restarts; the best-inertia run is kept.
  std::size_t restarts = 4;
};

struct KMeansResult {
  std::vector<std::size_t> assignments;
  std::vector<std::vector<double>> centroids;
  /// Sum of squared Euclidean distances to assigned centroids.
  double inertia = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Clusters equal-length vectors into opts.k groups.
/// Requires 1 <= k <= points.size().
KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    const KMeansOptions& opts);

}  // namespace appscope::ts
