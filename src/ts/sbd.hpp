// appscope/ts/sbd.hpp
//
// Shape-Based Distance (SBD) and cross-correlation alignment from the
// k-Shape paper (Paparrizos & Gravano, SIGMOD 2015).
//
// For equal-length series x, y of length m:
//   NCCc_w(x, y) = CC_w(x, y) / (||x||_2 ||y||_2),  w = 1..2m-1
//   SBD(x, y)    = 1 - max_w NCCc_w(x, y)          ∈ [0, 2]
// where CC_w is the linear cross-correlation at shift s = w - m.
// SBD is shift-invariant; on z-normalized series it is also scale-invariant.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace appscope::ts {

struct SbdResult {
  /// The distance 1 - max NCCc, in [0, 2] (0 = identical shape).
  double distance = 0.0;
  /// Optimal alignment shift of y relative to x, in [-(m-1), m-1].
  std::ptrdiff_t shift = 0;
  /// max NCCc value, in [-1, 1].
  double ncc = 0.0;
};

/// Full normalized cross-correlation sequence NCCc_w, w = 1..2m-1
/// (index i corresponds to shift s = i - (m-1)). If either series has zero
/// norm, the sequence is all zeros.
std::vector<double> ncc_c(std::span<const double> x, std::span<const double> y);

/// SBD with optimal shift. Requires equal, non-zero lengths.
SbdResult sbd(std::span<const double> x, std::span<const double> y);

/// Distance only (convenience for distance-functor interfaces).
double sbd_distance(std::span<const double> x, std::span<const double> y);

/// Shifts `y` by `shift` positions (positive = right), zero-padding the
/// vacated samples; output length equals input length. This is the k-Shape
/// alignment step applied before shape extraction.
std::vector<double> shift_series(std::span<const double> y, std::ptrdiff_t shift);

/// Allocation-free variant: writes the shifted series into `out` (resized
/// to y.size(), reusing capacity) — for alignment loops that shift into the
/// same buffer repeatedly.
void shift_series_into(std::span<const double> y, std::ptrdiff_t shift,
                       std::vector<double>& out);

/// Aligns y against reference x: computes sbd(x, y) and returns y shifted by
/// the optimal shift.
std::vector<double> align_to(std::span<const double> x, std::span<const double> y);

/// Symmetric pairwise SBD matrix over `series` (all equal length >= 2),
/// zero diagonal, in the legacy nested layout. Compatibility shim over the
/// SeriesBatch overload (ts/series_batch.hpp), which precomputes each
/// series' spectrum once instead of per pair — prefer it (and the flat
/// DistanceMatrix it returns) in new code. Row-sharded across the global
/// util::ThreadPool; bitwise identical at any thread count.
std::vector<std::vector<double>> sbd_distance_matrix(
    const std::vector<std::vector<double>>& series);

}  // namespace appscope::ts
