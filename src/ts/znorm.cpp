#include "ts/znorm.hpp"

#include <algorithm>
#include <cmath>

#include "la/simd.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace appscope::ts {

void znormalize_inplace(std::span<double> x) noexcept {
  if (x.empty()) return;
  // The mean/stddev pass is a sequential Welford reduction and stays
  // scalar: reordering it would change the statistics' bits, and through
  // them every normalized value. Only the elementwise apply loop below
  // goes through the dispatched SIMD kernels.
  stats::RunningStats rs;
  for (const double v : x) rs.add(v);
  const double m = rs.sum() / static_cast<double>(x.size());
  const double sd = rs.stddev_population();
  if (sd <= 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    return;
  }
  la::simd::active().znorm_apply(x.data(), x.size(), m, sd);
}

void znormalize_into(std::span<const double> x, std::vector<double>& out) {
  out.assign(x.begin(), x.end());
  znormalize_inplace(out);
}

std::vector<double> znormalize(std::span<const double> x) {
  std::vector<double> out;
  znormalize_into(x, out);
  return out;
}

TimeSeries znormalize(const TimeSeries& x) {
  std::vector<double> v(x.values().begin(), x.values().end());
  znormalize_inplace(v);
  return TimeSeries(std::move(v), x.label());
}

bool is_znormalized(std::span<const double> x, double tol) noexcept {
  if (x.empty()) return true;
  stats::RunningStats rs;
  for (const double v : x) rs.add(v);
  const double m = rs.sum() / static_cast<double>(x.size());
  const double sd = rs.stddev_population();
  const bool all_zero = rs.min() == 0.0 && rs.max() == 0.0;
  return all_zero || (std::abs(m) <= tol && std::abs(sd - 1.0) <= tol);
}

}  // namespace appscope::ts
