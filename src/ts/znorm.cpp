#include "ts/znorm.hpp"

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace appscope::ts {

void znormalize_inplace(std::span<double> x) noexcept {
  if (x.empty()) return;
  stats::RunningStats rs;
  for (const double v : x) rs.add(v);
  const double m = rs.sum() / static_cast<double>(x.size());
  const double sd = rs.stddev_population();
  if (sd <= 0.0) {
    for (double& v : x) v = 0.0;
    return;
  }
  for (double& v : x) v = (v - m) / sd;
}

std::vector<double> znormalize(std::span<const double> x) {
  std::vector<double> out(x.begin(), x.end());
  znormalize_inplace(out);
  return out;
}

TimeSeries znormalize(const TimeSeries& x) {
  std::vector<double> v(x.values().begin(), x.values().end());
  znormalize_inplace(v);
  return TimeSeries(std::move(v), x.label());
}

bool is_znormalized(std::span<const double> x, double tol) noexcept {
  if (x.empty()) return true;
  stats::RunningStats rs;
  for (const double v : x) rs.add(v);
  const double m = rs.sum() / static_cast<double>(x.size());
  const double sd = rs.stddev_population();
  const bool all_zero = rs.min() == 0.0 && rs.max() == 0.0;
  return all_zero || (std::abs(m) <= tol && std::abs(sd - 1.0) <= tol);
}

}  // namespace appscope::ts
