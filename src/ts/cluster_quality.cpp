#include "ts/cluster_quality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace appscope::ts {

namespace {

std::vector<std::vector<std::size_t>> group_members(
    const std::vector<std::size_t>& assignments, std::size_t k) {
  std::vector<std::vector<std::size_t>> groups(k);
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    APPSCOPE_REQUIRE(assignments[i] < k, "cluster_quality: assignment out of range");
    groups[assignments[i]].push_back(i);
  }
  return groups;
}

std::size_t max_cluster_id(const std::vector<std::size_t>& assignments) {
  APPSCOPE_REQUIRE(!assignments.empty(), "cluster_quality: empty assignment");
  return *std::max_element(assignments.begin(), assignments.end()) + 1;
}

std::size_t count_nonempty(const std::vector<std::vector<std::size_t>>& groups) {
  std::size_t n = 0;
  for (const auto& g : groups) {
    if (!g.empty()) ++n;
  }
  return n;
}

/// Silhouette over point indices with distances supplied by `pd(i, j)`.
/// Shared by the functor and precomputed-matrix overloads so both produce
/// identical results for consistent inputs.
template <typename PointDist>
double silhouette_impl(std::size_t n_points,
                       const std::vector<std::size_t>& assignments,
                       PointDist&& pd) {
  APPSCOPE_REQUIRE(n_points == assignments.size(),
                   "silhouette: data/assignment size mismatch");
  const std::size_t k = max_cluster_id(assignments);
  const auto groups = group_members(assignments, k);
  APPSCOPE_REQUIRE(count_nonempty(groups) >= 2,
                   "silhouette: needs >= 2 non-empty clusters");

  double total = 0.0;
  for (std::size_t i = 0; i < n_points; ++i) {
    const std::size_t own = assignments[i];
    if (groups[own].size() <= 1) continue;  // silhouette of singleton := 0

    // a(i): mean distance to own cluster (excluding self).
    double a = 0.0;
    for (const std::size_t j : groups[own]) {
      if (j != i) a += pd(i, j);
    }
    a /= static_cast<double>(groups[own].size() - 1);

    // b(i): smallest mean distance to another non-empty cluster.
    double b = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == own || groups[c].empty()) continue;
      double m = 0.0;
      for (const std::size_t j : groups[c]) m += pd(i, j);
      m /= static_cast<double>(groups[c].size());
      b = std::min(b, m);
    }

    const double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(n_points);
}

template <typename PointDist>
double dunn_impl(std::size_t n_points,
                 const std::vector<std::size_t>& assignments, PointDist&& pd) {
  APPSCOPE_REQUIRE(n_points == assignments.size(),
                   "dunn_index: data/assignment size mismatch");
  const std::size_t k = max_cluster_id(assignments);
  const auto groups = group_members(assignments, k);
  APPSCOPE_REQUIRE(count_nonempty(groups) >= 2,
                   "dunn_index: needs >= 2 non-empty clusters");

  // Max intra-cluster diameter.
  double max_diameter = 0.0;
  for (const auto& g : groups) {
    for (std::size_t a = 0; a < g.size(); ++a) {
      for (std::size_t b = a + 1; b < g.size(); ++b) {
        max_diameter = std::max(max_diameter, pd(g[a], g[b]));
      }
    }
  }

  // Min inter-cluster single-linkage distance.
  double min_separation = std::numeric_limits<double>::infinity();
  for (std::size_t c1 = 0; c1 < k; ++c1) {
    if (groups[c1].empty()) continue;
    for (std::size_t c2 = c1 + 1; c2 < k; ++c2) {
      if (groups[c2].empty()) continue;
      for (const std::size_t a : groups[c1]) {
        for (const std::size_t b : groups[c2]) {
          min_separation = std::min(min_separation, pd(a, b));
        }
      }
    }
  }

  if (max_diameter <= 0.0) {
    // All clusters are single points or duplicates: conventionally infinite
    // separation; report a large sentinel instead of dividing by zero.
    return std::numeric_limits<double>::infinity();
  }
  return min_separation / max_diameter;
}

}  // namespace

double silhouette(const std::vector<std::vector<double>>& data,
                  const std::vector<std::size_t>& assignments,
                  const DistanceFn& dist) {
  return silhouette_impl(data.size(), assignments,
                         [&](std::size_t i, std::size_t j) {
                           return dist(data[i], data[j]);
                         });
}

double silhouette(const DistanceMatrix& pairwise,
                  const std::vector<std::size_t>& assignments) {
  return silhouette_impl(pairwise.size(), assignments,
                         [&](std::size_t i, std::size_t j) {
                           return pairwise(i, j);
                         });
}

double dunn_index(const std::vector<std::vector<double>>& data,
                  const std::vector<std::size_t>& assignments,
                  const DistanceFn& dist) {
  return dunn_impl(data.size(), assignments,
                   [&](std::size_t i, std::size_t j) {
                     return dist(data[i], data[j]);
                   });
}

double dunn_index(const DistanceMatrix& pairwise,
                  const std::vector<std::size_t>& assignments) {
  return dunn_impl(pairwise.size(), assignments,
                   [&](std::size_t i, std::size_t j) {
                     return pairwise(i, j);
                   });
}

namespace {

/// Mean member-to-centroid distance per cluster (empty cluster -> 0).
std::vector<double> cluster_scatter(const std::vector<std::vector<double>>& data,
                                    const ClusteringView& clustering,
                                    const std::vector<std::vector<std::size_t>>& groups,
                                    const DistanceFn& dist) {
  std::vector<double> s(groups.size(), 0.0);
  for (std::size_t c = 0; c < groups.size(); ++c) {
    if (groups[c].empty()) continue;
    double acc = 0.0;
    for (const std::size_t i : groups[c]) {
      acc += dist(data[i], clustering.centroids[c]);
    }
    s[c] = acc / static_cast<double>(groups[c].size());
  }
  return s;
}

void validate_clustering(const std::vector<std::vector<double>>& data,
                         const ClusteringView& clustering) {
  APPSCOPE_REQUIRE(data.size() == clustering.assignments.size(),
                   "davies_bouldin: data/assignment size mismatch");
  APPSCOPE_REQUIRE(!clustering.centroids.empty(),
                   "davies_bouldin: clustering has no centroids");
  for (const std::size_t a : clustering.assignments) {
    APPSCOPE_REQUIRE(a < clustering.centroids.size(),
                     "davies_bouldin: assignment exceeds centroid count");
  }
}

}  // namespace

double davies_bouldin(const std::vector<std::vector<double>>& data,
                      const ClusteringView& clustering, const DistanceFn& dist) {
  validate_clustering(data, clustering);
  const std::size_t k = clustering.centroids.size();
  const auto groups = group_members(clustering.assignments, k);
  APPSCOPE_REQUIRE(count_nonempty(groups) >= 2,
                   "davies_bouldin: needs >= 2 non-empty clusters");
  const auto s = cluster_scatter(data, clustering, groups, dist);

  double total = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (groups[i].empty()) continue;
    double worst = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (j == i || groups[j].empty()) continue;
      const double sep = dist(clustering.centroids[i], clustering.centroids[j]);
      if (sep <= 0.0) continue;  // coincident centroids carry no information
      worst = std::max(worst, (s[i] + s[j]) / sep);
    }
    total += worst;
    ++used;
  }
  return total / static_cast<double>(used);
}

double davies_bouldin_star(const std::vector<std::vector<double>>& data,
                           const ClusteringView& clustering,
                           const DistanceFn& dist) {
  validate_clustering(data, clustering);
  const std::size_t k = clustering.centroids.size();
  const auto groups = group_members(clustering.assignments, k);
  APPSCOPE_REQUIRE(count_nonempty(groups) >= 2,
                   "davies_bouldin_star: needs >= 2 non-empty clusters");
  const auto s = cluster_scatter(data, clustering, groups, dist);

  double total = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (groups[i].empty()) continue;
    double max_sum = 0.0;
    double min_sep = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < k; ++j) {
      if (j == i || groups[j].empty()) continue;
      max_sum = std::max(max_sum, s[i] + s[j]);
      const double sep = dist(clustering.centroids[i], clustering.centroids[j]);
      if (sep > 0.0) min_sep = std::min(min_sep, sep);
    }
    if (std::isfinite(min_sep)) {
      total += max_sum / min_sep;
      ++used;
    }
  }
  APPSCOPE_REQUIRE(used > 0, "davies_bouldin_star: all centroids coincide");
  return total / static_cast<double>(used);
}

QualityIndices evaluate_quality(const std::vector<std::vector<double>>& data,
                                const ClusteringView& clustering,
                                const DistanceFn& dist) {
  QualityIndices q;
  q.davies_bouldin = davies_bouldin(data, clustering, dist);
  q.davies_bouldin_star = davies_bouldin_star(data, clustering, dist);
  q.dunn = dunn_index(data, clustering.assignments, dist);
  q.silhouette = silhouette(data, clustering.assignments, dist);
  return q;
}

QualityIndices evaluate_quality(const std::vector<std::vector<double>>& data,
                                const ClusteringView& clustering,
                                const DistanceFn& dist,
                                const DistanceMatrix& pairwise) {
  APPSCOPE_REQUIRE(pairwise.size() == data.size(),
                   "evaluate_quality: pairwise matrix size mismatch");
  QualityIndices q;
  // DB/DB* involve centroid distances, which a point-pairwise matrix cannot
  // supply; Dunn and silhouette read only point pairs and use the matrix.
  q.davies_bouldin = davies_bouldin(data, clustering, dist);
  q.davies_bouldin_star = davies_bouldin_star(data, clustering, dist);
  q.dunn = dunn_index(pairwise, clustering.assignments);
  q.silhouette = silhouette(pairwise, clustering.assignments);
  return q;
}

}  // namespace appscope::ts
