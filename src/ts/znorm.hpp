// appscope/ts/znorm.hpp
//
// Z-normalization (zero mean, unit variance), the canonical preprocessing
// for shape-based time-series comparison (k-Shape operates on z-normalized
// series).
#pragma once

#include <span>
#include <vector>

#include "ts/time_series.hpp"

namespace appscope::ts {

/// Returns (x - mean) / stddev. A constant series maps to all zeros
/// (its shape carries no information).
std::vector<double> znormalize(std::span<const double> x);

/// In-place variant.
void znormalize_inplace(std::span<double> x) noexcept;

/// Writes the normalized copy into `out` (resized to x.size()), reusing
/// out's existing capacity — the allocation-free variant for loops that
/// normalize into the same buffer repeatedly.
void znormalize_into(std::span<const double> x, std::vector<double>& out);

/// TimeSeries convenience overload (label preserved).
TimeSeries znormalize(const TimeSeries& x);

/// True if |mean| <= tol and |stddev - 1| <= tol (or the series is all-zero).
bool is_znormalized(std::span<const double> x, double tol = 1e-9) noexcept;

}  // namespace appscope::ts
