// appscope/ts/cluster_quality.hpp
//
// Internal clustering-quality indices used in Fig. 5 to rank cluster sets:
// Davies-Bouldin (DB), modified Davies-Bouldin (DB*, Kim & Ramakrishna 2005)
// — minimum is best — and Dunn, Silhouette — maximum is best.
//
// All indices are parameterized by a distance function so they apply to both
// SBD (k-Shape) and Euclidean (k-means baseline) geometries.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "ts/distance_matrix.hpp"

namespace appscope::ts {

using DistanceFn =
    std::function<double(std::span<const double>, std::span<const double>)>;

/// A clustering over `data` for quality evaluation: per-point assignments
/// plus the centroids the clusterer produced.
struct ClusteringView {
  std::vector<std::size_t> assignments;
  std::vector<std::vector<double>> centroids;
};

/// Mean silhouette over all points, in [-1, 1] (higher = better separation).
/// Points in singleton clusters contribute 0 (standard convention).
/// Requires >= 2 non-empty clusters.
double silhouette(const std::vector<std::vector<double>>& data,
                  const std::vector<std::size_t>& assignments,
                  const DistanceFn& dist);

/// Silhouette from precomputed pairwise point distances (e.g. an SBD matrix
/// from ts::sbd_distance_matrix). Identical result to the functor overload
/// when `pairwise(i, j) == dist(data[i], data[j])`.
double silhouette(const DistanceMatrix& pairwise,
                  const std::vector<std::size_t>& assignments);

/// Dunn index: min inter-cluster single-linkage distance divided by max
/// intra-cluster diameter (higher = better). Requires >= 2 non-empty
/// clusters and at least one cluster with >= 2 members.
double dunn_index(const std::vector<std::vector<double>>& data,
                  const std::vector<std::size_t>& assignments,
                  const DistanceFn& dist);

/// Dunn index from precomputed pairwise point distances.
double dunn_index(const DistanceMatrix& pairwise,
                  const std::vector<std::size_t>& assignments);

/// Davies-Bouldin: mean over clusters of max_j (S_i + S_j) / d(c_i, c_j),
/// with S_i the mean member-to-centroid distance (lower = better).
double davies_bouldin(const std::vector<std::vector<double>>& data,
                      const ClusteringView& clustering, const DistanceFn& dist);

/// Modified Davies-Bouldin DB*: mean over clusters of
/// [max_j (S_i + S_j)] / [min_j d(c_i, c_j)] (lower = better).
double davies_bouldin_star(const std::vector<std::vector<double>>& data,
                           const ClusteringView& clustering,
                           const DistanceFn& dist);

/// All four indices at once (shares the pairwise-distance work).
struct QualityIndices {
  double davies_bouldin = 0.0;
  double davies_bouldin_star = 0.0;
  double dunn = 0.0;
  double silhouette = 0.0;
};

QualityIndices evaluate_quality(const std::vector<std::vector<double>>& data,
                                const ClusteringView& clustering,
                                const DistanceFn& dist);

/// evaluate_quality with the point-to-point distances read from `pairwise`
/// instead of recomputed through `dist` (which is still used for the
/// centroid distances in DB/DB*). With a consistent matrix the result is
/// identical to the functor-only overload; for SBD the pairwise matrix is
/// the dominant cost and is typically already on hand from the k sweep.
QualityIndices evaluate_quality(const std::vector<std::vector<double>>& data,
                                const ClusteringView& clustering,
                                const DistanceFn& dist,
                                const DistanceMatrix& pairwise);

}  // namespace appscope::ts
