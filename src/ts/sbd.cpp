#include "ts/sbd.hpp"

#include <algorithm>
#include <cmath>

#include "la/fft.hpp"
#include "la/vector_ops.hpp"
#include "ts/series_batch.hpp"
#include "util/error.hpp"

namespace appscope::ts {

std::vector<double> ncc_c(std::span<const double> x, std::span<const double> y) {
  APPSCOPE_REQUIRE(!x.empty() && x.size() == y.size(),
                   "ncc_c: equal non-zero lengths required");
  const double nx = la::norm2(x);
  const double ny = la::norm2(y);
  const std::size_t out_len = 2 * x.size() - 1;
  if (nx == 0.0 || ny == 0.0) return std::vector<double>(out_len, 0.0);

  // cross_correlation(a, b)[k] = sum_j a[j + k - (m-1)] * b[j]; with a = x,
  // b = y, index k corresponds to shifting y right by s = k - (m-1).
  std::vector<double> cc = la::cross_correlation(x, y);
  const double denom = nx * ny;
  for (double& v : cc) v /= denom;
  return cc;
}

SbdResult sbd(std::span<const double> x, std::span<const double> y) {
  APPSCOPE_REQUIRE(!x.empty() && x.size() == y.size(),
                   "sbd: equal non-zero lengths required");
  // Runs the canonical kernel with fresh spectra (empty spectrum spans);
  // SeriesBatch callers hit the same kernel with cached ones.
  return detail::sbd_spans(x, la::norm2(x), {}, y, la::norm2(y), {},
                           sbd_scratch());
}

double sbd_distance(std::span<const double> x, std::span<const double> y) {
  return sbd(x, y).distance;
}

void shift_series_into(std::span<const double> y, std::ptrdiff_t shift,
                       std::vector<double>& out) {
  const auto m = static_cast<std::ptrdiff_t>(y.size());
  APPSCOPE_REQUIRE(shift > -m && shift < m, "shift_series: |shift| must be < length");
  out.assign(y.size(), 0.0);
  for (std::ptrdiff_t i = 0; i < m; ++i) {
    const std::ptrdiff_t j = i - shift;  // out[i] = y[i - shift]
    if (j >= 0 && j < m) out[static_cast<std::size_t>(i)] = y[static_cast<std::size_t>(j)];
  }
}

std::vector<double> shift_series(std::span<const double> y, std::ptrdiff_t shift) {
  std::vector<double> out;
  shift_series_into(y, shift, out);
  return out;
}

std::vector<double> align_to(std::span<const double> x, std::span<const double> y) {
  const SbdResult r = sbd(x, y);
  return shift_series(y, r.shift);
}

std::vector<std::vector<double>> sbd_distance_matrix(
    const std::vector<std::vector<double>>& series) {
  // Compatibility shim over the SeriesBatch overload (ts/series_batch.hpp):
  // builds the spectrum cache once, computes the flat matrix, and unpacks
  // into the legacy nested layout.
  const SeriesBatch batch(series);
  const DistanceMatrix d = sbd_distance_matrix(batch);
  const std::size_t n = d.size();
  std::vector<std::vector<double>> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const double> row = d.row(i);
    out[i].assign(row.begin(), row.end());
  }
  return out;
}

}  // namespace appscope::ts
