#include "ts/sbd.hpp"

#include <algorithm>
#include <cmath>

#include "la/fft.hpp"
#include "la/vector_ops.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace appscope::ts {

std::vector<double> ncc_c(std::span<const double> x, std::span<const double> y) {
  APPSCOPE_REQUIRE(!x.empty() && x.size() == y.size(),
                   "ncc_c: equal non-zero lengths required");
  const double nx = la::norm2(x);
  const double ny = la::norm2(y);
  const std::size_t out_len = 2 * x.size() - 1;
  if (nx == 0.0 || ny == 0.0) return std::vector<double>(out_len, 0.0);

  // cross_correlation(a, b)[k] = sum_j a[j + k - (m-1)] * b[j]; with a = x,
  // b = y, index k corresponds to shifting y right by s = k - (m-1).
  std::vector<double> cc = la::cross_correlation(x, y);
  const double denom = nx * ny;
  for (double& v : cc) v /= denom;
  return cc;
}

SbdResult sbd(std::span<const double> x, std::span<const double> y) {
  const std::vector<double> ncc = ncc_c(x, y);
  const std::size_t m = x.size();
  SbdResult result;
  const std::size_t best = la::argmax(ncc);
  result.ncc = std::clamp(ncc[best], -1.0, 1.0);
  result.distance = 1.0 - result.ncc;
  result.shift = static_cast<std::ptrdiff_t>(best) -
                 static_cast<std::ptrdiff_t>(m - 1);
  return result;
}

double sbd_distance(std::span<const double> x, std::span<const double> y) {
  return sbd(x, y).distance;
}

std::vector<double> shift_series(std::span<const double> y, std::ptrdiff_t shift) {
  const auto m = static_cast<std::ptrdiff_t>(y.size());
  APPSCOPE_REQUIRE(shift > -m && shift < m, "shift_series: |shift| must be < length");
  std::vector<double> out(y.size(), 0.0);
  for (std::ptrdiff_t i = 0; i < m; ++i) {
    const std::ptrdiff_t j = i - shift;  // out[i] = y[i - shift]
    if (j >= 0 && j < m) out[static_cast<std::size_t>(i)] = y[static_cast<std::size_t>(j)];
  }
  return out;
}

std::vector<double> align_to(std::span<const double> x, std::span<const double> y) {
  const SbdResult r = sbd(x, y);
  return shift_series(y, r.shift);
}

std::vector<std::vector<double>> sbd_distance_matrix(
    const std::vector<std::vector<double>>& series) {
  const std::size_t n = series.size();
  APPSCOPE_REQUIRE(n >= 1, "sbd_distance_matrix: no series");
  const std::size_t len = series.front().size();
  for (const auto& s : series) {
    APPSCOPE_REQUIRE(s.size() == len, "sbd_distance_matrix: ragged series");
  }
  const util::ScopedSpan span("ts.sbd_matrix");
  util::StageTimer timer("ts.sbd_matrix");
  timer.add_items(n * (n - 1) / 2);  // pairwise distances computed

  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  // Row shards; later rows have shorter upper triangles, so a small grain
  // keeps the shards balanced.
  constexpr std::size_t kRowsPerShard = 4;
  util::parallel_for(0, n, kRowsPerShard,
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) {
                         for (std::size_t j = i + 1; j < n; ++j) {
                           d[i][j] = sbd_distance(series[i], series[j]);
                         }
                       }
                     });
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) d[j][i] = d[i][j];
  }
  return d;
}

}  // namespace appscope::ts
