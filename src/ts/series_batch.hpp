// appscope/ts/series_batch.hpp
//
// Flat storage + cached spectra for the SBD/k-Shape hot path.
//
// The seed computed every pairwise SBD independently: two forward FFTs, a
// product, an inverse FFT, and ~4 temporary vectors per pair — so an N-series
// distance matrix ran O(N^2) forward transforms over the same N inputs.
// SeriesBatch stores equal-length series row-major in one allocation and
// precomputes, per series, its L2 norm and (when the series is long enough
// for the spectral path) its forward real-FFT spectrum at the padded
// correlation size. A pairwise SBD then costs one conjugate multiply and one
// inverse transform into per-worker scratch, with zero allocations in the
// inner loop: O(N) forward transforms total instead of O(N^2).
//
// Bitwise contract: sbd_pair() on cached spectra produces bit-identical
// results to ts::sbd() on the raw series, because both run the same kernel
// (detail::sbd_spans) and rfft is deterministic — a cached spectrum is the
// same bits as a freshly computed one. Property-tested in
// tests/properties/test_prop_sbd_batch.cpp.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "la/aligned.hpp"
#include "la/fft_plan.hpp"
#include "ts/distance_matrix.hpp"
#include "ts/sbd.hpp"

namespace appscope::ts {

/// Direct evaluation wins for SBD up to this series length; above it the
/// batch spectral path is faster. Lower than
/// la::kCrossCorrelationDirectThreshold because cached spectra reduce the
/// per-pair spectral cost to one conj-multiply plus one inverse transform:
/// measured (release, -O2, plan cache warm) direct wins at m = 80 (2.3us vs
/// 2.8us per pair) and loses from m = 96 (3.9us vs 2.9us).
inline constexpr std::size_t kSbdSpectralThreshold = 80;

/// True when SBD over length-m series takes the spectral path (above
/// kSbdSpectralThreshold); below it, correlations are evaluated directly and
/// batches skip spectrum precomputation entirely.
bool sbd_uses_spectral(std::size_t length) noexcept;

/// Flat row-major batch of equal-length series with cached per-series norms
/// and padded forward spectra. Immutable rows except through set_series(),
/// which refreshes that row's cache. Distinct rows may be updated from
/// distinct threads concurrently (disjoint storage).
class SeriesBatch {
 public:
  SeriesBatch() = default;
  /// Flattens `series` (all equal length >= 1) and precomputes norms and
  /// spectra; rows are processed in parallel on the global pool.
  explicit SeriesBatch(const std::vector<std::vector<double>>& series);
  /// `count` all-zero series of `length` (norms 0, spectra 0) — the shape
  /// k-Shape centroid batches start from; fill rows via set_series().
  SeriesBatch(std::size_t count, std::size_t length);

  std::size_t size() const noexcept { return count_; }
  std::size_t length() const noexcept { return length_; }
  bool empty() const noexcept { return count_ == 0; }

  /// FFT size used for cached spectra (next_pow2(2 * length - 1)), or 0 when
  /// the batch is below the spectral crossover and holds no spectra.
  std::size_t padded_size() const noexcept { return padded_; }
  bool spectral() const noexcept { return padded_ != 0; }

  std::span<const double> series(std::size_t i) const noexcept {
    return {values_.data() + i * row_pitch_, length_};
  }
  double norm(std::size_t i) const noexcept { return norms_[i]; }
  /// Cached forward spectrum of row i (padded_size()/2 + 1 bins). Only valid
  /// when spectral().
  std::span<const std::complex<double>> spectrum(std::size_t i) const noexcept {
    return {spectra_.data() + i * spec_pitch_, spec_stride_};
  }

  /// Overwrites row i with `values` (must match length()) and refreshes its
  /// norm and spectrum.
  void set_series(std::size_t i, std::span<const double> values);

 private:
  void refresh_row(std::size_t i);

  std::size_t count_ = 0;
  std::size_t length_ = 0;
  std::size_t padded_ = 0;       // 0 => direct path, no spectra
  std::size_t spec_stride_ = 0;  // padded_ / 2 + 1 when spectral
  // Physical row pitches: logical extents rounded up to whole cache lines
  // so every row starts 64-byte aligned (padding stays zero, never read).
  std::size_t row_pitch_ = 0;    // >= length_
  std::size_t spec_pitch_ = 0;   // >= spec_stride_
  la::AlignedVector<double> values_;  // count_ x row_pitch_
  std::vector<double> norms_;         // count_
  la::AlignedVector<std::complex<double>> spectra_;  // count_ x spec_pitch_
};

/// Per-worker scratch for the SBD kernel. Buffers grow to the working size
/// on first use and are reused (fully overwritten) on every call — zero
/// allocations in steady state, across matrix sizes (a larger problem grows
/// the buffers once; smaller ones slice prefixes). Growth is recorded under
/// ts.sbd.scratch_bytes when metrics are enabled. Buffers are cache-line
/// aligned: the SIMD kernels stream through them, and distinct workers'
/// scratch never shares a line.
struct SbdScratch {
  la::AlignedVector<std::complex<double>> spec_x;  // fresh spectrum (x)
  la::AlignedVector<std::complex<double>> spec_y;  // fresh spectrum (y)
  la::AlignedVector<std::complex<double>> product;  // X . conj(Y) -> irfft
  la::AlignedVector<double> corr;                   // correlation output
};

/// Thread-local scratch instance — callers on pool workers each get their
/// own, so parallel SBD loops share nothing mutable.
SbdScratch& sbd_scratch();

namespace detail {
/// Canonical SBD kernel shared by the per-pair (ts::sbd) and batch
/// (sbd_pair) entry points; both paths being this one function is what makes
/// them bitwise identical. Pass empty spectra to have them computed fresh
/// into `scratch` (the per-pair path); cached spectra must have been
/// produced by the same rfft at next_pow2(2m - 1).
SbdResult sbd_spans(std::span<const double> x, double norm_x,
                    std::span<const std::complex<double>> spec_x,
                    std::span<const double> y, double norm_y,
                    std::span<const std::complex<double>> spec_y,
                    SbdScratch& scratch);
}  // namespace detail

/// SBD between row i of `x` and row j of `y` using cached norms/spectra.
/// Batches must have equal lengths. Bit-identical to
/// ts::sbd(x.series(i), y.series(j)).
SbdResult sbd_pair(const SeriesBatch& x, std::size_t i, const SeriesBatch& y,
                   std::size_t j, SbdScratch& scratch);

/// Distance-only convenience for assignment loops.
double sbd_pair_distance(const SeriesBatch& x, std::size_t i,
                         const SeriesBatch& y, std::size_t j,
                         SbdScratch& scratch);

/// Symmetric pairwise SBD matrix over the batch (zero diagonal), row-sharded
/// across the global pool with per-worker scratch; bitwise identical to the
/// per-pair ts::sbd_distance_matrix at any thread count.
DistanceMatrix sbd_distance_matrix(const SeriesBatch& batch);

}  // namespace appscope::ts
