#include "ts/calendar.hpp"

#include <cmath>

#include "util/error.hpp"

namespace appscope::ts {

std::string_view day_name(Day d) noexcept {
  switch (d) {
    case Day::kSaturday: return "Sat";
    case Day::kSunday: return "Sun";
    case Day::kMonday: return "Mon";
    case Day::kTuesday: return "Tue";
    case Day::kWednesday: return "Wed";
    case Day::kThursday: return "Thu";
    case Day::kFriday: return "Fri";
  }
  return "???";
}

WeekHour week_hour(std::size_t index) {
  APPSCOPE_REQUIRE(index < kHoursPerWeek, "week_hour: index out of range");
  return WeekHour{static_cast<std::uint16_t>(index)};
}

WeekHour week_hour(Day day, std::size_t hour_of_day) {
  APPSCOPE_REQUIRE(hour_of_day < kHoursPerDay, "week_hour: hour out of range");
  return week_hour(static_cast<std::size_t>(day) * kHoursPerDay + hour_of_day);
}

std::array<TopicalTime, kTopicalTimeCount> all_topical_times() noexcept {
  return {TopicalTime::kWeekendMidday,   TopicalTime::kWeekendEvening,
          TopicalTime::kMorningCommute,  TopicalTime::kMorningBreak,
          TopicalTime::kMidday,          TopicalTime::kAfternoonCommute,
          TopicalTime::kEvening};
}

std::string_view topical_time_name(TopicalTime t) noexcept {
  switch (t) {
    case TopicalTime::kWeekendMidday: return "Weekend midday";
    case TopicalTime::kWeekendEvening: return "Weekend evening";
    case TopicalTime::kMorningCommute: return "Morning commuting";
    case TopicalTime::kMorningBreak: return "Morning break";
    case TopicalTime::kMidday: return "Midday";
    case TopicalTime::kAfternoonCommute: return "Afternoon commuting";
    case TopicalTime::kEvening: return "Evening";
  }
  return "???";
}

std::size_t topical_anchor_hour(TopicalTime t) noexcept {
  switch (t) {
    case TopicalTime::kWeekendMidday: return 13;
    case TopicalTime::kWeekendEvening: return 21;
    case TopicalTime::kMorningCommute: return 8;
    case TopicalTime::kMorningBreak: return 10;
    case TopicalTime::kMidday: return 13;
    case TopicalTime::kAfternoonCommute: return 18;
    case TopicalTime::kEvening: return 21;
  }
  return 0;
}

bool topical_is_weekend(TopicalTime t) noexcept {
  return t == TopicalTime::kWeekendMidday || t == TopicalTime::kWeekendEvening;
}

std::optional<TopicalTime> classify_topical(WeekHour wh,
                                            std::size_t tolerance_hours) {
  const bool weekend = wh.is_weekend();
  const auto hod = static_cast<long>(wh.hour_of_day());

  std::optional<TopicalTime> best;
  long best_distance = 0;
  for (const TopicalTime t : all_topical_times()) {
    if (topical_is_weekend(t) != weekend) continue;
    const long distance = std::abs(hod - static_cast<long>(topical_anchor_hour(t)));
    if (distance > static_cast<long>(tolerance_hours)) continue;
    if (!best || distance < best_distance) {
      best = t;
      best_distance = distance;
    }
  }
  return best;
}

std::vector<std::size_t> topical_interval_hours(TopicalTime t,
                                                std::size_t tolerance_hours) {
  std::vector<std::size_t> out;
  const auto anchor = static_cast<long>(topical_anchor_hour(t));
  const auto tol = static_cast<long>(tolerance_hours);
  const std::size_t day_lo = topical_is_weekend(t) ? 0 : 2;
  const std::size_t day_hi = topical_is_weekend(t) ? 2 : kDaysPerWeek;
  for (std::size_t d = day_lo; d < day_hi; ++d) {
    for (long h = anchor - tol; h <= anchor + tol; ++h) {
      if (h < 0 || h >= static_cast<long>(kHoursPerDay)) continue;
      out.push_back(d * kHoursPerDay + static_cast<std::size_t>(h));
    }
  }
  return out;
}

}  // namespace appscope::ts
