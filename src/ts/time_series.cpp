#include "ts/time_series.hpp"

#include <algorithm>

#include "la/vector_ops.hpp"
#include "util/error.hpp"

namespace appscope::ts {

TimeSeries::TimeSeries(std::vector<double> values, std::string label)
    : values_(std::move(values)), label_(std::move(label)) {}

TimeSeries TimeSeries::zeros(std::size_t size, std::string label) {
  return TimeSeries(std::vector<double>(size, 0.0), std::move(label));
}

double TimeSeries::at(std::size_t i) const {
  APPSCOPE_REQUIRE(i < values_.size(), "TimeSeries::at: index out of range");
  return values_[i];
}

double TimeSeries::sum() const noexcept { return la::sum(values_); }

double TimeSeries::mean() const { return la::mean(values_); }

double TimeSeries::max() const { return la::max_element(values_); }

double TimeSeries::min() const { return la::min_element(values_); }

TimeSeries& TimeSeries::operator+=(const TimeSeries& other) {
  APPSCOPE_REQUIRE(size() == other.size(), "TimeSeries+=: size mismatch");
  for (std::size_t i = 0; i < size(); ++i) values_[i] += other.values_[i];
  return *this;
}

TimeSeries& TimeSeries::operator-=(const TimeSeries& other) {
  APPSCOPE_REQUIRE(size() == other.size(), "TimeSeries-=: size mismatch");
  for (std::size_t i = 0; i < size(); ++i) values_[i] -= other.values_[i];
  return *this;
}

TimeSeries& TimeSeries::operator*=(double alpha) noexcept {
  for (double& v : values_) v *= alpha;
  return *this;
}

TimeSeries TimeSeries::operator+(const TimeSeries& other) const {
  TimeSeries out = *this;
  out += other;
  return out;
}

TimeSeries TimeSeries::operator-(const TimeSeries& other) const {
  TimeSeries out = *this;
  out -= other;
  return out;
}

TimeSeries TimeSeries::operator*(double alpha) const {
  TimeSeries out = *this;
  out *= alpha;
  return out;
}

TimeSeries TimeSeries::normalized_to_unit_sum() const {
  const double total = sum();
  APPSCOPE_REQUIRE(total > 0.0, "normalized_to_unit_sum: non-positive sum");
  TimeSeries out = *this;
  out *= 1.0 / total;
  return out;
}

TimeSeries TimeSeries::moving_average(std::size_t half_window) const {
  if (empty() || half_window == 0) return *this;
  TimeSeries out = zeros(size(), label_);
  for (std::size_t i = 0; i < size(); ++i) {
    const std::size_t lo = i >= half_window ? i - half_window : 0;
    const std::size_t hi = std::min(size() - 1, i + half_window);
    double acc = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) acc += values_[j];
    out[i] = acc / static_cast<double>(hi - lo + 1);
  }
  return out;
}

TimeSeries TimeSeries::downsample(std::size_t factor) const {
  APPSCOPE_REQUIRE(factor > 0, "downsample: factor must be positive");
  APPSCOPE_REQUIRE(size() % factor == 0, "downsample: factor must divide size");
  TimeSeries out = zeros(size() / factor, label_);
  for (std::size_t i = 0; i < out.size(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < factor; ++j) acc += values_[i * factor + j];
    out[i] = acc / static_cast<double>(factor);
  }
  return out;
}

TimeSeries TimeSeries::slice(std::size_t begin, std::size_t count) const {
  APPSCOPE_REQUIRE(begin + count <= size(), "slice: range out of bounds");
  return TimeSeries(
      std::vector<double>(values_.begin() + static_cast<std::ptrdiff_t>(begin),
                          values_.begin() + static_cast<std::ptrdiff_t>(begin + count)),
      label_);
}

double TimeSeries::day_total(Day day) const {
  APPSCOPE_REQUIRE(size() == kHoursPerWeek,
                   "day_total: requires a 168-sample weekly series");
  const std::size_t base = static_cast<std::size_t>(day) * kHoursPerDay;
  double acc = 0.0;
  for (std::size_t h = 0; h < kHoursPerDay; ++h) acc += values_[base + h];
  return acc;
}

std::vector<double> TimeSeries::mean_daily_profile(bool weekend) const {
  APPSCOPE_REQUIRE(size() == kHoursPerWeek,
                   "mean_daily_profile: requires a 168-sample weekly series");
  const std::size_t day_lo = weekend ? 0 : 2;
  const std::size_t day_hi = weekend ? 2 : kDaysPerWeek;
  std::vector<double> profile(kHoursPerDay, 0.0);
  for (std::size_t d = day_lo; d < day_hi; ++d) {
    for (std::size_t h = 0; h < kHoursPerDay; ++h) {
      profile[h] += values_[d * kHoursPerDay + h];
    }
  }
  const double days = static_cast<double>(day_hi - day_lo);
  for (double& v : profile) v /= days;
  return profile;
}

}  // namespace appscope::ts
