// appscope/ts/peaks.hpp
//
// Smoothed z-score peak detection (the "ximeg gist" algorithm the paper
// cites), plus the peak-interval and topical-time machinery behind Figs. 4,
// 6 and 7.
//
// The detector compares each sample against the mean/stddev of the previous
// `lag` *filtered* samples; samples deviating by more than `threshold`
// standard deviations raise a +1/-1 signal, and signalled samples enter the
// filtered history damped by `influence`. The paper's tuned parameters are
// lag = 2 hours, threshold = 3 z-scores, influence = 0.4.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "ts/calendar.hpp"

namespace appscope::ts {

// The paper sets (lag = 2 h, threshold = 3, influence = 0.4) "upon an
// extensive tuning process" against its fine-grained probe data. This
// library operates on hourly aggregates, where a 2-sample window is
// degenerate (its stddev vanishes on smooth stretches and any accelerating
// diurnal ramp fires). The defaults below keep the paper's threshold and
// re-tune window, influence and detrending for hourly series — the same
// calibration exercise the authors performed on theirs (see DESIGN.md and
// the fig06 --sweep ablation). The raw gist behaviour is available via
// {.lag = 2, .influence = 0.4, .detrend_half_window = 0}.
struct ZScorePeakOptions {
  /// Number of past (filtered) samples forming the rolling window.
  std::size_t lag = 6;
  /// Signal threshold in z-scores.
  double threshold = 3.0;
  /// Weight of a signalled sample when it enters the filtered history.
  double influence = 0.1;
  /// Deviation floor as a fraction of the rolling mean: a sample only
  /// signals when |x - mean| also exceeds this fraction of |mean|. With the
  /// short 2-hour window the rolling stddev degenerates to ~0 on smooth
  /// stretches, where the bare gist algorithm fires on numerically
  /// irrelevant wiggles; the floor suppresses those without affecting real
  /// surges (which exceed 20% of the local level by construction).
  double min_relative_deviation = 0.05;
  /// Half-width (hours) of the centered moving average used to detrend the
  /// series before the z-score pass; 0 disables detrending. The paper's
  /// probes work on fine-grained traffic where a 2-hour lag spans many
  /// samples; on hourly aggregates the 2-sample window mistakes any
  /// accelerating diurnal ramp for a surge. Dividing by a ±3 h moving
  /// average removes the ramp while sharp topical-time surges survive.
  /// Requires a strictly positive series when enabled.
  std::size_t detrend_half_window = 3;
  /// Treat the series as cyclic when building the detrending baseline
  /// (weekly traffic wraps Friday night into Saturday morning); otherwise
  /// the window truncates at the edges and biases the baseline there.
  /// Disable for genuinely non-periodic inputs.
  bool detrend_wrap = true;
};

/// Half-open sample range [begin, end) of a detected activity peak.
struct PeakInterval {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t length() const noexcept { return end - begin; }
  friend bool operator==(const PeakInterval&, const PeakInterval&) = default;
};

struct PeakDetection {
  /// The signal the z-score pass actually ran on: the input itself, or the
  /// input divided by its moving-average baseline when detrending is on.
  std::vector<double> processed;
  /// Per-sample signal: +1 above band, -1 below band, 0 inside.
  std::vector<int> signal;
  /// Rolling mean of the filtered history at each sample (the "smoothed"
  /// curve in Fig. 4 right). First `lag` samples replicate the first value.
  std::vector<double> smoothed;
  /// Rolling stddev of the filtered history (band half-width / threshold).
  std::vector<double> band;
  /// Sample indices where a +1 run starts ("rising fronts", the red lines).
  std::vector<std::size_t> rising_fronts;
  /// Maximal runs of +1 signal.
  std::vector<PeakInterval> intervals;
};

/// Runs the smoothed z-score detector. Requires series.size() > opts.lag and
/// opts.lag >= 1, threshold > 0, influence in [0, 1].
PeakDetection detect_peaks(std::span<const double> series,
                           const ZScorePeakOptions& opts = {});

/// Peak intensity of an interval: max/min - 1 of the *original* series over
/// the interval (the paper's "ratio between the maximum and minimum traffic
/// volumes recorded during the peak intervals", reported as a percentage).
/// Requires a non-empty interval inside the series and positive minimum.
double interval_intensity(std::span<const double> series, PeakInterval interval);

/// Index of the highest processed sample of an interval (allowing one
/// sample past the signalled run, where influence damping can end the run
/// just before the crest). Peaks are classified by this apex, not by the
/// rising front: a front at 9h belongs to a 10h anchor.
std::size_t interval_apex(const PeakDetection& detection, PeakInterval interval);

/// Classifies each detected interval's apex into a topical time (if any);
/// returns the set of topical times at which the series peaks, in ring
/// order (Fig. 6).
std::vector<TopicalTime> peak_topical_times(const PeakDetection& detection,
                                            std::size_t tolerance_hours = 1);

/// Per-topical-time intensity (Fig. 7): for each topical time with at least
/// one detected peak interval whose apex maps to it, the maximum surge
/// intensity across those intervals, measured on the processed
/// (trend-relative) signal — the surge height over the local baseline, as
/// the Fig. 7 percentages express. Absent topical times yield std::nullopt.
std::array<std::optional<double>, kTopicalTimeCount> topical_peak_intensities(
    std::span<const double> series, const PeakDetection& detection,
    std::size_t tolerance_hours = 1);

}  // namespace appscope::ts
