// appscope/ts/autocorrelation.hpp
//
// Autocorrelation and periodicity analysis. The paper's temporal sections
// rest on the weekly/daily structure of the demand; these utilities verify
// it quantitatively (the national series must show a dominant 24 h period
// and a 168 h weekly echo).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace appscope::ts {

/// Sample autocorrelation function r(k) for k = 0..max_lag (r(0) = 1).
/// Requires series length > max_lag and non-constant input.
std::vector<double> autocorrelation(std::span<const double> series,
                                    std::size_t max_lag);

/// The lag in [min_lag, max_lag] with the highest autocorrelation — the
/// dominant period of the signal.
/// Requires 1 <= min_lag <= max_lag < series length.
std::size_t dominant_period(std::span<const double> series, std::size_t min_lag,
                            std::size_t max_lag);

/// Seasonality strength at a candidate period: max(0, r(period)) — a value
/// near 1 means the signal repeats almost exactly at that period.
double seasonality_strength(std::span<const double> series, std::size_t period);

}  // namespace appscope::ts
