#include "ts/peaks.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/metrics.hpp"

namespace appscope::ts {

PeakDetection detect_peaks(std::span<const double> series,
                           const ZScorePeakOptions& opts) {
  APPSCOPE_REQUIRE(opts.lag >= 1, "detect_peaks: lag must be >= 1");
  APPSCOPE_REQUIRE(series.size() > opts.lag,
                   "detect_peaks: series must be longer than lag");
  APPSCOPE_REQUIRE(opts.threshold > 0.0, "detect_peaks: threshold must be > 0");
  APPSCOPE_REQUIRE(opts.influence >= 0.0 && opts.influence <= 1.0,
                   "detect_peaks: influence must be in [0,1]");
  APPSCOPE_REQUIRE(opts.min_relative_deviation >= 0.0,
                   "detect_peaks: min_relative_deviation must be >= 0");

  util::StageTimer timer("ts.peak_detect");
  timer.add_items(series.size());

  const std::size_t n = series.size();
  PeakDetection out;
  out.signal.assign(n, 0);
  out.smoothed.assign(n, 0.0);
  out.band.assign(n, 0.0);

  // Optional detrending: divide by a centered moving-MEDIAN baseline so the
  // z-score pass sees surges relative to the local trend. The median (not
  // the mean) keeps the baseline honest around the surges themselves: a
  // 1-2 hour spike inside the window would inflate a mean baseline and both
  // flatten its own ratio and carve spurious dips around it.
  out.processed.assign(series.begin(), series.end());
  if (opts.detrend_half_window > 0) {
    const std::size_t hw = opts.detrend_half_window;
    std::vector<double> window;
    window.reserve(2 * hw + 1);
    for (std::size_t i = 0; i < n; ++i) {
      window.clear();
      // Donut window: the sample under test and its direct neighbours do
      // not vote on their own baseline, so a 1-3 hour surge sticks out
      // fully instead of lifting the trend it is compared against.
      for (std::ptrdiff_t off = -static_cast<std::ptrdiff_t>(hw);
           off <= static_cast<std::ptrdiff_t>(hw); ++off) {
        if (off >= -1 && off <= 1) continue;
        const std::ptrdiff_t raw = static_cast<std::ptrdiff_t>(i) + off;
        if (opts.detrend_wrap) {
          const std::ptrdiff_t m =
              ((raw % static_cast<std::ptrdiff_t>(n)) +
               static_cast<std::ptrdiff_t>(n)) %
              static_cast<std::ptrdiff_t>(n);
          window.push_back(series[static_cast<std::size_t>(m)]);
        } else if (raw >= 0 && raw < static_cast<std::ptrdiff_t>(n)) {
          window.push_back(series[static_cast<std::size_t>(raw)]);
        }
      }
      if (window.empty()) window.push_back(series[i]);
      const auto mid = window.begin() + static_cast<std::ptrdiff_t>(window.size() / 2);
      std::nth_element(window.begin(), mid, window.end());
      double baseline = *mid;
      if (window.size() % 2 == 0) {
        const double upper = baseline;
        const auto below =
            window.begin() + static_cast<std::ptrdiff_t>(window.size() / 2 - 1);
        std::nth_element(window.begin(), below, window.end());
        baseline = (upper + *below) / 2.0;
      }
      APPSCOPE_REQUIRE(baseline > 0.0,
                       "detect_peaks: detrending requires a positive series");
      out.processed[i] = series[i] / baseline;
    }
  }
  const std::vector<double>& work = out.processed;

  std::vector<double> filtered(work.begin(), work.end());

  auto window_mean_std = [&filtered, &opts](std::size_t i) {
    // Mean/stddev of filtered[i-lag .. i-1].
    double m = 0.0;
    for (std::size_t j = i - opts.lag; j < i; ++j) m += filtered[j];
    m /= static_cast<double>(opts.lag);
    double v = 0.0;
    for (std::size_t j = i - opts.lag; j < i; ++j) {
      const double d = filtered[j] - m;
      v += d * d;
    }
    v /= static_cast<double>(opts.lag);
    return std::pair<double, double>(m, std::sqrt(v));
  };

  for (std::size_t i = opts.lag; i < n; ++i) {
    const auto [m, sd] = window_mean_std(i);
    out.smoothed[i] = m;
    out.band[i] = opts.threshold * sd;
    const double deviation = std::abs(work[i] - m);
    const double deviation_floor = opts.min_relative_deviation * std::abs(m);
    if (deviation > opts.threshold * sd && deviation > deviation_floor &&
        deviation > 0.0) {
      out.signal[i] = work[i] > m ? 1 : -1;
      filtered[i] =
          opts.influence * work[i] + (1.0 - opts.influence) * filtered[i - 1];
    } else {
      out.signal[i] = 0;
      filtered[i] = work[i];
    }
  }
  // Warm-up samples mirror the first computed smoothed value for plotting.
  for (std::size_t i = 0; i < opts.lag && opts.lag < n; ++i) {
    out.smoothed[i] = out.smoothed[opts.lag];
    out.band[i] = out.band[opts.lag];
  }

  // Extract +1 runs and their rising fronts.
  std::size_t i = 0;
  while (i < n) {
    if (out.signal[i] == 1) {
      const std::size_t begin = i;
      while (i < n && out.signal[i] == 1) ++i;
      out.intervals.push_back(PeakInterval{begin, i});
      out.rising_fronts.push_back(begin);
    } else {
      ++i;
    }
  }
  return out;
}

double interval_intensity(std::span<const double> series, PeakInterval interval) {
  APPSCOPE_REQUIRE(interval.begin < interval.end && interval.end <= series.size(),
                   "interval_intensity: invalid interval");
  double lo = series[interval.begin];
  double hi = series[interval.begin];
  // Include one sample of context on each side so the rise itself (from the
  // pre-peak trough) is measured, matching the paper's peak-interval reading.
  const std::size_t begin = interval.begin > 0 ? interval.begin - 1 : 0;
  const std::size_t end = std::min(series.size(), interval.end + 1);
  for (std::size_t i = begin; i < end; ++i) {
    lo = std::min(lo, series[i]);
    hi = std::max(hi, series[i]);
  }
  APPSCOPE_REQUIRE(lo > 0.0, "interval_intensity: non-positive minimum");
  return hi / lo - 1.0;
}

std::size_t interval_apex(const PeakDetection& detection, PeakInterval interval) {
  APPSCOPE_REQUIRE(interval.begin < interval.end &&
                       interval.end <= detection.processed.size(),
                   "interval_apex: invalid interval");
  std::size_t apex = interval.begin;
  for (std::size_t i = interval.begin + 1; i < interval.end; ++i) {
    if (detection.processed[i] > detection.processed[apex]) apex = i;
  }
  // A peak's apex can sit one sample past the signalled run when the
  // influence damping cuts the run short of the crest.
  if (interval.end < detection.processed.size() &&
      detection.processed[interval.end] > detection.processed[apex]) {
    apex = interval.end;
  }
  return apex;
}

std::vector<TopicalTime> peak_topical_times(const PeakDetection& detection,
                                            std::size_t tolerance_hours) {
  std::array<bool, kTopicalTimeCount> seen{};
  for (const PeakInterval& interval : detection.intervals) {
    const std::size_t apex = interval_apex(detection, interval);
    if (apex >= kHoursPerWeek) continue;  // only weekly series classify
    const auto t = classify_topical(week_hour(apex), tolerance_hours);
    if (t) seen[static_cast<std::size_t>(*t)] = true;
  }
  std::vector<TopicalTime> out;
  for (const TopicalTime t : all_topical_times()) {
    if (seen[static_cast<std::size_t>(t)]) out.push_back(t);
  }
  return out;
}

std::array<std::optional<double>, kTopicalTimeCount> topical_peak_intensities(
    std::span<const double> series, const PeakDetection& detection,
    std::size_t tolerance_hours) {
  APPSCOPE_REQUIRE(series.size() == detection.processed.size(),
                   "topical_peak_intensities: series/detection mismatch");
  std::array<std::optional<double>, kTopicalTimeCount> out{};
  for (const PeakInterval& interval : detection.intervals) {
    const std::size_t apex = interval_apex(detection, interval);
    if (apex >= kHoursPerWeek) continue;
    const auto t = classify_topical(week_hour(apex), tolerance_hours);
    if (!t) continue;
    // Intensity is the surge's height over the detector's own rolling
    // baseline at the apex — the trend-relative "how far above normal did
    // it spike" the Fig. 7 percentages express. (The raw max/min over the
    // interval misreads the diurnal trend inside the interval as surge.)
    const double baseline = detection.smoothed[apex];
    if (baseline <= 0.0) continue;
    const double intensity = detection.processed[apex] / baseline - 1.0;
    auto& slot = out[static_cast<std::size_t>(*t)];
    slot = slot ? std::max(*slot, intensity) : intensity;
  }
  return out;
}

}  // namespace appscope::ts
