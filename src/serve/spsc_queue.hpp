// appscope/serve/spsc_queue.hpp
//
// Bounded lock-free single-producer/single-consumer ring queue — the ingest
// path between the daemon's router thread and each shard worker. One
// producer thread calls try_push, one consumer thread calls try_pop; no
// other concurrency is allowed (the router is the single producer of every
// shard queue, which is what keeps the queue SPSC and the ingest hot path
// free of locks and CAS loops).
//
// The implementation is the classic cached-index ring: head (consumer) and
// tail (producer) live on their own cache lines, and each side caches the
// other's index so the common case touches one shared atomic, not two.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace appscope::serve {

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two (masked indexing); the queue
  /// holds up to `capacity` elements.
  explicit SpscQueue(std::size_t capacity) {
    APPSCOPE_REQUIRE(capacity > 0, "SpscQueue: capacity must be positive");
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  /// Producer side. Returns false when the queue is full.
  bool try_push(const T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    ring_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the queue is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = ring_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (either side may be mid-operation); exact when
  /// both sides are quiescent. Safe to call from any thread.
  std::size_t size() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  std::vector<T> ring_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer-owned
  alignas(64) std::size_t tail_cache_ = 0;        // consumer's view of tail_
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer-owned
  alignas(64) std::size_t head_cache_ = 0;        // producer's view of head_
};

}  // namespace appscope::serve
