// appscope_serve — the always-on streaming ingest daemon. Replays the
// scenario's synthetic event stream (rate-controlled) into the sharded
// ingest plane, seals epoch snapshots that run_study / paper_report can
// load atomically, and reports online peak / Zipf analyses per epoch.
//
// Run:  ./appscope_serve --snapshot-dir=serve_out           (test scale)
//       ./appscope_serve --scale=example --rate=2000000 --duration=30
//       ./appscope_serve --shards=8 --epoch-seconds=21600 --weeks=2
//       APPSCOPE_METRICS=1 ./appscope_serve ...             (metrics JSON)
//
// SIGTERM / SIGINT drain the queues, seal the final partial epoch and exit
// cleanly, so `latest.snapshot` is always a complete, loadable file.
#include <atomic>
#include <csignal>
#include <cstdint>
#include <iostream>

#include "serve/daemon.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

using namespace appscope;

namespace {

std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) {
  g_stop.store(true, std::memory_order_relaxed);
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  util::write_metrics_at_exit();
  util::enable_trace_export(args.get_string("trace", ""));

  serve::ServeConfig config;
  const std::string scale = args.get_string("scale", "test");
  if (scale == "example") {
    config.scenario = synth::ScenarioConfig::example_scale();
  } else if (scale == "paper") {
    config.scenario = synth::ScenarioConfig::paper_scale();
  } else if (scale != "test") {
    std::cerr << "unknown --scale=" << scale << " (test|example|paper)\n";
    return 2;
  }

  config.shard_count = static_cast<std::size_t>(args.get_int("shards", 4));
  config.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-capacity", 1 << 16));
  config.epoch_seconds =
      static_cast<std::uint32_t>(args.get_int("epoch-seconds", 3600));
  config.events_per_cell =
      static_cast<std::size_t>(args.get_int("events-per-cell", 1));
  config.target_events_per_second = args.get_double("rate", 0.0);
  config.duration_seconds = args.get_double("duration", 0.0);
  config.weeks = static_cast<std::size_t>(args.get_int("weeks", 1));
  config.sample_period =
      static_cast<std::uint64_t>(args.get_int("sample-period", 8));
  config.force_sampling = args.has("force-sampling");
  config.snapshot_dir = args.get_string("snapshot-dir", "");
  config.stop_flag = &g_stop;

  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);

  try {
    serve::IngestDaemon daemon(config);
    std::cerr << "appscope_serve: " << daemon.week_event_count()
              << " events/week staged, " << config.shard_count
              << " shards, epoch " << config.epoch_seconds << "s";
    if (config.target_events_per_second > 0.0) {
      std::cerr << ", target " << config.target_events_per_second << " ev/s";
    }
    std::cerr << "\n";

    const serve::ServeStats stats = daemon.run();

    std::cerr << "appscope_serve: ingested " << stats.ingested << " events ("
              << stats.sampled << " shed by sampling, "
              << stats.overload_triggers << " overload triggers) in "
              << stats.wall_seconds << "s — " << stats.events_per_second
              << " ev/s\n";
    std::cerr << "appscope_serve: sealed " << stats.epochs_sealed
              << " epochs; rising fronts " << stats.rising_fronts
              << ", zipf rank changes " << stats.zipf_rank_changes
              << ", zipf exponent " << stats.zipf_exponent << "\n";
    if (!stats.latest_snapshot.empty()) {
      std::cerr << "appscope_serve: latest snapshot at "
                << stats.latest_snapshot << "\n";
    }
  } catch (const util::Error& error) {
    std::cerr << "appscope_serve: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
