// appscope_serve — the always-on streaming ingest daemon. Replays the
// scenario's synthetic event stream (rate-controlled) into the sharded
// ingest plane, seals epoch snapshots that run_study / paper_report can
// load atomically, and reports online peak / Zipf analyses per epoch.
//
// Run:  ./appscope_serve --snapshot-dir=serve_out           (test scale)
//       ./appscope_serve --scale=example --rate=2000000 --duration=30
//       ./appscope_serve --shards=8 --epoch-seconds=21600 --weeks=2
//       APPSCOPE_METRICS=1 ./appscope_serve ...             (metrics JSON)
//       ./appscope_serve --admin-port=9100 ...              (live telemetry)
//
// --admin-port=N (or APPSCOPE_ADMIN_PORT=N) attaches the live telemetry
// plane: /metrics, /healthz, /statusz and /tracez on 127.0.0.1:N (0 binds
// an ephemeral port, printed at startup). --admin-sample-ms tunes the
// sampler cadence; --epoch-stall-seconds and --seal-slo arm the watchdog's
// epoch-stall and seal-latency heuristics.
//
// SIGTERM / SIGINT drain the queues, seal the final partial epoch and exit
// cleanly, so `latest.snapshot` is always a complete, loadable file. A
// second signal skips the drain: the metrics JSON is flushed best-effort
// and the process exits immediately.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "obs/telemetry.hpp"
#include "serve/daemon.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

using namespace appscope;

namespace {

std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int sig) {
  if (g_stop.exchange(true, std::memory_order_relaxed)) {
    // Second signal: the drain is stuck or too slow for the operator.
    // Salvage the metrics JSON (best-effort, skipped when disabled) and
    // exit without running atexit handlers against a wedged pipeline.
    util::flush_metrics_best_effort();
    std::_Exit(128 + sig);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  util::write_metrics_at_exit();
  util::enable_trace_export(args.get_string("trace", ""));

  serve::ServeConfig config;
  const std::string scale = args.get_string("scale", "test");
  if (scale == "example") {
    config.scenario = synth::ScenarioConfig::example_scale();
  } else if (scale == "paper") {
    config.scenario = synth::ScenarioConfig::paper_scale();
  } else if (scale != "test") {
    std::cerr << "unknown --scale=" << scale << " (test|example|paper)\n";
    return 2;
  }

  config.shard_count = static_cast<std::size_t>(args.get_int("shards", 4));
  config.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-capacity", 1 << 16));
  config.epoch_seconds =
      static_cast<std::uint32_t>(args.get_int("epoch-seconds", 3600));
  config.events_per_cell =
      static_cast<std::size_t>(args.get_int("events-per-cell", 1));
  config.target_events_per_second = args.get_double("rate", 0.0);
  config.duration_seconds = args.get_double("duration", 0.0);
  config.weeks = static_cast<std::size_t>(args.get_int("weeks", 1));
  config.sample_period =
      static_cast<std::uint64_t>(args.get_int("sample-period", 8));
  config.force_sampling = args.has("force-sampling");
  config.snapshot_dir = args.get_string("snapshot-dir", "");
  config.stop_flag = &g_stop;

  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);

  try {
    // Live telemetry plane: only when asked for via flag or environment.
    std::unique_ptr<obs::TelemetryPlane> telemetry;
    const int admin_port =
        obs::resolve_admin_port(static_cast<int>(args.get_int("admin-port", -1)));
    if (admin_port >= 0) {
      obs::TelemetryOptions topts;
      topts.admin.port = static_cast<std::uint16_t>(admin_port);
      topts.admin.bind_address = args.get_string("admin-bind", "127.0.0.1");
      topts.sampler.interval =
          std::chrono::milliseconds(args.get_int("admin-sample-ms", 1000));
      topts.watchdog.expected_epoch_seconds =
          args.get_double("epoch-stall-seconds", 0.0);
      topts.watchdog.seal_p99_slo_seconds = args.get_double("seal-slo", 0.0);
      telemetry = std::make_unique<obs::TelemetryPlane>(topts);
      telemetry->start();
      std::cerr << "appscope_serve: admin endpoint on http://"
                << topts.admin.bind_address << ":" << telemetry->port()
                << " (/metrics /healthz /statusz /tracez)\n";
    }

    serve::IngestDaemon daemon(config);
    std::cerr << "appscope_serve: " << daemon.week_event_count()
              << " events/week staged, " << config.shard_count
              << " shards, epoch " << config.epoch_seconds << "s";
    if (config.target_events_per_second > 0.0) {
      std::cerr << ", target " << config.target_events_per_second << " ev/s";
    }
    std::cerr << "\n";

    const serve::ServeStats stats = daemon.run();

    std::cerr << "appscope_serve: ingested " << stats.ingested << " events ("
              << stats.sampled << " shed by sampling, "
              << stats.overload_triggers << " overload triggers) in "
              << stats.wall_seconds << "s — " << stats.events_per_second
              << " ev/s\n";
    std::cerr << "appscope_serve: sealed " << stats.epochs_sealed
              << " epochs; rising fronts " << stats.rising_fronts
              << ", zipf rank changes " << stats.zipf_rank_changes
              << ", zipf exponent " << stats.zipf_exponent << "\n";
    if (!stats.latest_snapshot.empty()) {
      std::cerr << "appscope_serve: latest snapshot at "
                << stats.latest_snapshot << "\n";
    }
  } catch (const util::Error& error) {
    std::cerr << "appscope_serve: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
