// appscope/serve/epoch.hpp
//
// Epoch-based publication of the live ingest state. Epochs are defined on
// *event time* (never wall time): epoch e covers event seconds
// [e * epoch_seconds, (e + 1) * epoch_seconds). That makes the sequence of
// sealed states a pure function of the event stream and the schedule — the
// determinism contract property tests pin down.
//
// At each boundary the daemon merges the shard deltas into its rolling
// state and the sealer writes it through the existing snapshot store as a
// self-contained "appscope.snapshot/1" file: epoch_<index>.snapshot, plus
// an atomically republished latest.snapshot. Readers (run_study,
// paper_report, appscope_query consumers) always observe a complete,
// CRC-valid file: snapshots are written to a temp name in the same
// directory and renamed into place, and rename is atomic on POSIX.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "geo/territory.hpp"
#include "io/snapshot.hpp"
#include "serve/aggregates.hpp"
#include "synth/scenario.hpp"
#include "workload/catalog.hpp"
#include "workload/population.hpp"

namespace appscope::serve {

/// Event-time epoch schedule. Epoch lengths are whole hours: the replay
/// source stages events hour-major, so hour boundaries are the finest
/// sealing granularity the stream exposes.
struct EpochSchedule {
  std::uint32_t epoch_seconds = 3600;

  std::uint64_t epoch_of(std::uint64_t event_second) const noexcept {
    return event_second / epoch_seconds;
  }
};

struct SealedEpoch {
  std::uint64_t index = 0;
  std::string path;
  /// Events accumulated in the sealed (rolling) state.
  std::uint64_t events = 0;
  io::SnapshotStats stats;
};

class EpochSealer {
 public:
  /// Creates `directory` if missing. References must outlive the sealer;
  /// they are embedded in every sealed snapshot so each file is
  /// self-contained and loads via core::TrafficDataset::load.
  EpochSealer(std::string directory, const synth::ScenarioConfig& config,
              const geo::Territory& territory,
              const workload::SubscriberBase& subscribers,
              const workload::ServiceCatalog& catalog);

  /// Seals the rolling state as epoch `index`: writes epoch_<index>.snapshot
  /// and republishes latest.snapshot, both via write-to-temp + atomic
  /// rename. Throws util::InputError on I/O failure.
  SealedEpoch seal(std::uint64_t index, const EventAggregates& rolling);

  /// Path the most recent complete snapshot is published under.
  std::string latest_path() const;

  static std::string epoch_filename(std::uint64_t index);

 private:
  std::string directory_;
  const synth::ScenarioConfig& config_;
  const geo::Territory& territory_;
  const workload::SubscriberBase& subscribers_;
  const workload::ServiceCatalog& catalog_;
  std::array<std::uint64_t, geo::kUrbanizationCount> class_subscribers_{};
};

}  // namespace appscope::serve
