// appscope/serve/config.hpp
//
// Configuration of the appscope_serve ingest daemon.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "synth/scenario.hpp"

namespace appscope::serve {

struct ServeConfig {
  /// Scenario the replay source synthesizes (territory, population,
  /// catalog, traffic seed).
  synth::ScenarioConfig scenario = synth::ScenarioConfig::test_scale();

  /// Ingest shards: one aggregation worker + one SPSC queue each.
  std::size_t shard_count = 4;
  /// Per-shard queue capacity (rounded up to a power of two).
  std::size_t queue_capacity = 1 << 16;
  /// Full-queue retries before an event counts as sustained overload and
  /// the sampler engages.
  std::size_t route_retry_limit = 1024;

  /// Event-time epoch length; must be a whole number of hours (the replay
  /// stream is hour-granular).
  std::uint32_t epoch_seconds = 3600;

  /// Events each nonzero (service, commune, hour) cell is split into.
  std::size_t events_per_cell = 1;
  /// Target replay rate in events/second; 0 = unthrottled (as fast as the
  /// shards accept).
  double target_events_per_second = 0.0;
  /// Wall-clock run length; 0 = replay exactly `weeks` weeks instead.
  double duration_seconds = 0.0;
  /// Weeks to replay when duration_seconds == 0 (the staged week loops,
  /// epoch indices keep increasing).
  std::size_t weeks = 1;

  /// Overload sampling: keep 1 event in `sample_period`, volumes scaled by
  /// the period (see serve/sampler.hpp).
  std::uint64_t sample_period = 8;
  /// Events one overload trigger keeps sampling active for.
  std::uint64_t sample_window = 65536;
  /// Sample the whole stream from event zero (deterministic overload tests).
  bool force_sampling = false;

  /// Directory epoch snapshots are sealed into; empty disables sealing.
  std::string snapshot_dir;

  /// When set, a true value drains and stops the daemon (SIGTERM handler
  /// target). Checked between routing batches.
  const std::atomic<bool>* stop_flag = nullptr;
};

}  // namespace appscope::serve
