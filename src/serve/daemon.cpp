#include "serve/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "geo/territory.hpp"
#include "net/types.hpp"
#include "serve/epoch.hpp"
#include "serve/ingest.hpp"
#include "serve/online.hpp"
#include "serve/sampler.hpp"
#include "synth/replay.hpp"
#include "ts/calendar.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"
#include "workload/catalog.hpp"
#include "workload/population.hpp"

namespace appscope::serve {

namespace {
/// Router batch: events routed between pacing / metrics / stop-flag checks.
constexpr std::size_t kBatchEvents = 4096;
}  // namespace

struct IngestDaemon::Impl {
  explicit Impl(ServeConfig cfg)
      : config(std::move(cfg)),
        territory(geo::build_synthetic_country(config.scenario.country)),
        subscribers(territory, config.scenario.population),
        catalog(workload::ServiceCatalog::paper_services()),
        replay(territory, subscribers, catalog, config.scenario,
               config.events_per_cell) {
    APPSCOPE_REQUIRE(config.shard_count >= 1,
                     "IngestDaemon: shard_count must be >= 1");
    APPSCOPE_REQUIRE(
        config.epoch_seconds > 0 &&
            config.epoch_seconds % net::kSecondsPerHour == 0,
        "IngestDaemon: epoch_seconds must be a positive whole number of hours");
    APPSCOPE_REQUIRE(config.weeks >= 1 || config.duration_seconds > 0.0,
                     "IngestDaemon: nothing to replay");
  }

  ServeConfig config;
  geo::Territory territory;
  workload::SubscriberBase subscribers;
  workload::ServiceCatalog catalog;
  synth::EventReplaySource replay;
  bool ran = false;
};

IngestDaemon::IngestDaemon(ServeConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

IngestDaemon::~IngestDaemon() = default;

std::size_t IngestDaemon::week_event_count() const noexcept {
  return impl_->replay.week_event_count();
}

ServeStats IngestDaemon::run() {
  APPSCOPE_REQUIRE(!impl_->ran, "IngestDaemon::run: already ran");
  impl_->ran = true;

  util::ScopedSpan span("serve.run");
  const ServeConfig& config = impl_->config;
  const std::size_t services = impl_->catalog.size();
  const std::size_t communes = impl_->territory.size();
  const bool metrics_on = util::MetricsRegistry::enabled();
  auto& registry = util::MetricsRegistry::global();
  if (metrics_on) {
    // Materialize the counters the soak validator asserts on, so they are
    // present in the metrics JSON even when they stay zero.
    registry.add("net.ingested", 0);
    registry.add("net.sampled", 0);
    registry.add("serve.overload.triggers", 0);
  }

  EventAggregates rolling(services, communes);
  ShardedIngest ingest(services, communes,
                       {config.shard_count, config.queue_capacity});
  OverloadSampler sampler(config.sample_period, config.sample_window);
  if (config.force_sampling) sampler.force_sampling();
  synth::RatePacer pacer(config.target_events_per_second);

  std::optional<EpochSealer> sealer;
  if (!config.snapshot_dir.empty()) {
    sealer.emplace(config.snapshot_dir, config.scenario, impl_->territory,
                   impl_->subscribers, impl_->catalog);
  }
  OnlinePeakTracker peaks(services);
  ZipfRankTracker zipf(services);

  ServeStats stats;
  const auto wall_start = std::chrono::steady_clock::now();
  const auto deadline =
      config.duration_seconds > 0.0
          ? wall_start + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(
                                 config.duration_seconds))
          : std::chrono::steady_clock::time_point::max();
  const bool run_forever = config.duration_seconds > 0.0;

  std::uint64_t sampled_reported = 0;  // net.sampled already flushed
  std::uint64_t ingested_reported = 0;
  std::uint64_t events_since_seal = 0;
  std::uint64_t hours_replayed = 0;
  bool stopping = false;

  // Per-shard gauge names, built once so the flush path never allocates.
  std::vector<std::string> shard_event_gauges;
  if (metrics_on) {
    shard_event_gauges.reserve(ingest.shard_count());
    for (std::size_t s = 0; s < ingest.shard_count(); ++s) {
      shard_event_gauges.push_back("serve.shard." + std::to_string(s) +
                                   ".events");
    }
  }

  // Enqueue-to-seal latency: one steady-clock mark per routed batch (a
  // per-event stamp would dominate the hot path), observed when the epoch
  // that drained those events seals. Bounded: marks beyond the cap are
  // dropped, which under-samples long epochs but never grows.
  constexpr std::size_t kMaxEnqueueMarks = 4096;
  std::vector<std::chrono::steady_clock::time_point> enqueue_marks;
  if (metrics_on) enqueue_marks.reserve(kMaxEnqueueMarks);

  const auto should_stop = [&]() {
    if (config.stop_flag != nullptr &&
        config.stop_flag->load(std::memory_order_relaxed)) {
      return true;
    }
    return run_forever && std::chrono::steady_clock::now() >= deadline;
  };

  const auto flush_batch_metrics = [&](std::uint64_t batch) {
    pacer.await(batch);
    if (!metrics_on) return;
    registry.add("net.ingested", stats.ingested - ingested_reported);
    registry.add("net.sampled", sampler.sampled() - sampled_reported);
    ingested_reported = stats.ingested;
    sampled_reported = sampler.sampled();
    std::size_t max_depth = 0;
    for (std::size_t s = 0; s < ingest.shard_count(); ++s) {
      const std::size_t depth = ingest.queue_depth(s);
      max_depth = std::max(max_depth, depth);
      registry.observe("serve.queue.depth", static_cast<double>(depth));
      registry.gauge(shard_event_gauges[s],
                     static_cast<double>(ingest.shard_events(s)));
    }
    registry.gauge("serve.queue.depth.max", static_cast<double>(max_depth));
    if (enqueue_marks.size() < kMaxEnqueueMarks) {
      enqueue_marks.push_back(std::chrono::steady_clock::now());
    }
  };

  // Trackers re-read the whole rolling state each epoch; until a full week
  // has been replayed only a prefix of each weekly series has data.
  const auto seal_epoch = [&](std::uint64_t index) {
    const auto seal_start = std::chrono::steady_clock::now();
    ingest.collect_epoch(rolling);
    const std::size_t covered_hours = static_cast<std::size_t>(
        std::min<std::uint64_t>(hours_replayed, ts::kHoursPerWeek));
    peaks.update(rolling, covered_hours);
    const ZipfRankTracker::Update zupdate = zipf.update(rolling);
    stats.rising_fronts = peaks.rising_fronts();
    stats.zipf_rank_changes = zipf.total_rank_changes();
    stats.zipf_exponent = zupdate.fit.exponent;
    if (sealer) {
      const SealedEpoch sealed = sealer->seal(index, rolling);
      stats.latest_snapshot = sealer->latest_path();
      (void)sealed;
    }
    ++stats.epochs_sealed;
    events_since_seal = 0;
    if (metrics_on) {
      const auto seal_end = std::chrono::steady_clock::now();
      registry.observe(
          "serve.epoch.seal_wall_seconds",
          std::chrono::duration<double>(seal_end - seal_start).count());
      // Every routed batch of this epoch has now been merged and sealed:
      // its enqueue mark resolves to one enqueue-to-seal latency sample.
      for (const auto& mark : enqueue_marks) {
        registry.observe("serve.ingest.enqueue_to_seal",
                         std::chrono::duration<double>(seal_end - mark).count());
      }
      enqueue_marks.clear();
      registry.gauge("serve.epoch.last_index", static_cast<double>(index));
      registry.gauge("serve.zipf.exponent", stats.zipf_exponent);
      registry.gauge("serve.peaks.rising_fronts",
                     static_cast<double>(stats.rising_fronts));
    }
  };

  const std::uint32_t epoch_seconds = config.epoch_seconds;
  for (std::size_t week = 0; !stopping; ++week) {
    if (!run_forever && week >= config.weeks) break;
    const std::uint64_t week_offset =
        static_cast<std::uint64_t>(week) * net::kSecondsPerWeek;
    for (std::size_t hour = 0; hour < ts::kHoursPerWeek && !stopping; ++hour) {
      const auto events = impl_->replay.hour_events(hour);
      std::size_t batch = 0;
      for (const net::ServiceEvent& staged : events) {
        const std::uint64_t scale = sampler.admit();
        if (scale == 0) {
          ++batch;  // dropped events still count against the replay rate
        } else {
          net::ServiceEvent event = staged;
          event.timestamp =
              static_cast<net::Timestamp>(event.timestamp + week_offset);
          if (!ingest.try_route(event, scale, config.route_retry_limit)) {
            // Sustained overload: engage shedding for the *next* events, but
            // never drop one the sampler already admitted — block instead.
            sampler.trigger();
            if (metrics_on) registry.add("serve.overload.triggers");
            ingest.route(event, scale);
          }
          ++stats.ingested;
          ++events_since_seal;
          ++batch;
        }
        if (batch >= kBatchEvents) {
          flush_batch_metrics(batch);
          batch = 0;
          if (should_stop()) {
            stopping = true;
            break;
          }
        }
      }
      if (batch > 0) flush_batch_metrics(batch);
      if (stopping) break;
      const std::uint64_t end_second =
          week_offset + static_cast<std::uint64_t>(hour + 1) *
                            net::kSecondsPerHour;
      ++hours_replayed;
      if (end_second % epoch_seconds == 0) {
        seal_epoch(end_second / epoch_seconds - 1);
      }
      if (should_stop()) stopping = true;
    }
  }

  // Drain: merge whatever the shards still hold and seal the partial epoch,
  // so a SIGTERM'd daemon leaves a consistent latest.snapshot behind.
  if (events_since_seal > 0) {
    const std::uint64_t covered_seconds =
        hours_replayed * net::kSecondsPerHour;
    seal_epoch(covered_seconds / epoch_seconds);
  }
  ingest.stop();

  stats.sampled = sampler.sampled();
  stats.overload_triggers = sampler.triggers();
  stats.backpressure_spins = ingest.backpressure_spins();
  const auto wall_end = std::chrono::steady_clock::now();
  stats.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  if (stats.wall_seconds > 0.0) {
    stats.events_per_second =
        static_cast<double>(stats.ingested + stats.sampled) /
        stats.wall_seconds;
  }
  if (metrics_on) {
    registry.add("net.sampled", sampler.sampled() - sampled_reported);
    registry.add("net.ingested", stats.ingested - ingested_reported);
    registry.add("serve.backpressure.spins", stats.backpressure_spins);
    registry.gauge("serve.events_per_second", stats.events_per_second);
  }
  return stats;
}

}  // namespace appscope::serve
