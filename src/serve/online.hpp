// appscope/serve/online.hpp
//
// Online analyses over the live rolling state, re-evaluated at every epoch
// seal. Both consume the uint64 aggregate state, so their outputs are as
// deterministic as the sealed snapshots.
//
//  * OnlinePeakTracker — the paper's smoothed z-score detector (ts::peaks)
//    is already streaming-shaped: it only looks backwards over a rolling
//    window. The tracker runs it over the covered prefix of every service's
//    national series, so topical-time surges are flagged while the week is
//    still filling in.
//  * ZipfRankTracker — incremental Fig. 2: maintains the service ranking by
//    cumulative volume, counts rank inversions between consecutive epochs
//    and refits the top-half Zipf exponent.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/aggregates.hpp"
#include "stats/zipf.hpp"
#include "ts/peaks.hpp"

namespace appscope::serve {

class OnlinePeakTracker {
 public:
  explicit OnlinePeakTracker(std::size_t services,
                             ts::ZScorePeakOptions options = {});

  /// Re-runs the detector over hours [0, covered_hours) of every service's
  /// national downlink series. Services whose covered prefix is too short
  /// for the detector, or not strictly positive (required by detrending),
  /// are skipped this round.
  void update(const EventAggregates& rolling, std::size_t covered_hours);

  /// Total rising fronts across services at the last update.
  std::uint64_t rising_fronts() const noexcept { return rising_fronts_; }
  /// Services with at least one detected peak interval at the last update.
  std::size_t services_with_peaks() const noexcept {
    return services_with_peaks_;
  }
  std::uint64_t updates() const noexcept { return updates_; }

 private:
  std::size_t services_;
  ts::ZScorePeakOptions options_;
  std::uint64_t rising_fronts_ = 0;
  std::size_t services_with_peaks_ = 0;
  std::uint64_t updates_ = 0;
};

class ZipfRankTracker {
 public:
  explicit ZipfRankTracker(std::size_t services);

  struct Update {
    /// Services whose rank differs from the previous epoch (0 on the first
    /// update).
    std::size_t rank_changes = 0;
    /// Top-half Zipf fit of the current ranking (default-constructed when
    /// fewer than two services have volume yet).
    stats::ZipfFit fit;
  };

  Update update(const EventAggregates& rolling);

  /// Current ranking: service indices in descending cumulative volume
  /// (ties broken by service index for determinism).
  const std::vector<std::size_t>& ranking() const noexcept { return ranking_; }
  std::uint64_t total_rank_changes() const noexcept { return total_changes_; }

 private:
  std::size_t services_;
  std::vector<std::size_t> ranking_;
  std::uint64_t total_changes_ = 0;
  bool have_ranking_ = false;
};

}  // namespace appscope::serve
