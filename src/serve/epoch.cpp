#include "serve/epoch.hpp"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace appscope::serve {

namespace fs = std::filesystem;

EpochSealer::EpochSealer(std::string directory,
                         const synth::ScenarioConfig& config,
                         const geo::Territory& territory,
                         const workload::SubscriberBase& subscribers,
                         const workload::ServiceCatalog& catalog)
    : directory_(std::move(directory)),
      config_(config),
      territory_(territory),
      subscribers_(subscribers),
      catalog_(catalog) {
  APPSCOPE_REQUIRE(!directory_.empty(), "EpochSealer: empty directory");
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    throw util::InputError("EpochSealer: cannot create " + directory_ + ": " +
                           ec.message());
  }
  for (std::size_t u = 0; u < geo::kUrbanizationCount; ++u) {
    class_subscribers_[u] =
        subscribers_.total_in(territory_, static_cast<geo::Urbanization>(u));
  }
}

std::string EpochSealer::epoch_filename(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "epoch_%06llu.snapshot",
                static_cast<unsigned long long>(index));
  return buf;
}

std::string EpochSealer::latest_path() const {
  return (fs::path(directory_) / "latest.snapshot").string();
}

SealedEpoch EpochSealer::seal(std::uint64_t index,
                              const EventAggregates& rolling) {
  util::ScopedSpan span("serve.epoch.seal");
  util::StageTimer timer("serve.epoch.seal");

  const io::DatasetAggregates aggregates =
      rolling.to_dataset_aggregates(class_subscribers_);

  const fs::path dir(directory_);
  const fs::path epoch_path = dir / epoch_filename(index);
  const fs::path tmp_path = dir / (epoch_filename(index) + ".tmp");

  SealedEpoch sealed;
  sealed.index = index;
  sealed.events = rolling.events();
  sealed.stats = io::write_snapshot(tmp_path.string(), config_, territory_,
                                    subscribers_, catalog_, aggregates);
  std::error_code ec;
  fs::rename(tmp_path, epoch_path, ec);
  if (ec) {
    throw util::InputError("EpochSealer: cannot publish " +
                           epoch_path.string() + ": " + ec.message());
  }
  sealed.path = epoch_path.string();

  // Republish latest.snapshot atomically: copy the sealed file to a temp
  // name, then rename over the previous latest. A concurrent reader either
  // maps the old complete snapshot or the new one, never a partial write.
  const fs::path latest_tmp = dir / "latest.snapshot.tmp";
  fs::copy_file(epoch_path, latest_tmp, fs::copy_options::overwrite_existing,
                ec);
  if (!ec) fs::rename(latest_tmp, dir / "latest.snapshot", ec);
  if (ec) {
    throw util::InputError("EpochSealer: cannot republish latest.snapshot: " +
                           ec.message());
  }

  if (util::MetricsRegistry::enabled()) {
    auto& registry = util::MetricsRegistry::global();
    registry.add("serve.epochs.sealed");
    registry.add("serve.epoch.bytes_written", sealed.stats.bytes);
  }
  timer.add_bytes(sealed.stats.bytes);
  timer.add_items(1);
  return sealed;
}

}  // namespace appscope::serve
