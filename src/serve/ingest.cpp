#include "serve/ingest.hpp"

#include <chrono>

#include "util/error.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace appscope::serve {
namespace {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#endif
}

/// Spin-then-yield backoff for queue-full / queue-empty waits: cheap pauses
/// first (the other side is usually a few cache misses away), then yield the
/// core so a paced or oversubscribed run does not burn it.
inline void backoff(std::size_t attempt) noexcept {
  if (attempt < 64) {
    cpu_relax();
  } else {
    std::this_thread::yield();
  }
}

}  // namespace

ShardedIngest::ShardedIngest(std::size_t services, std::size_t communes,
                             Options options)
    : services_(services), communes_(communes) {
  APPSCOPE_REQUIRE(options.shards >= 1, "ShardedIngest: need >= 1 shard");
  APPSCOPE_REQUIRE(options.queue_capacity >= 2,
                   "ShardedIngest: queue capacity too small");
  shards_.reserve(options.shards);
  for (std::size_t i = 0; i < options.shards; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(services, communes, options.queue_capacity));
  }
  for (std::size_t i = 0; i < options.shards; ++i) {
    shards_[i]->worker = std::thread([this, i] { worker_loop(i); });
  }
}

ShardedIngest::~ShardedIngest() { stop(); }

void ShardedIngest::worker_loop(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  EventAggregates delta(services_, communes_);
  Msg msg;
  std::size_t idle = 0;
  for (;;) {
    if (shard.paused.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (!shard.queue.try_pop(msg)) {
      backoff(idle++);
      continue;
    }
    idle = 0;
    if (msg.scale != 0) {
      delta.apply(msg.event, msg.scale);
      shard.processed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (msg.event.flags == kBarrier) {
      {
        const std::lock_guard<std::mutex> lock(handoff_mutex_);
        // handoff holds the previous epoch's already-merged (and reset)
        // state, so the swap hands the fresh delta out and takes a zeroed
        // aggregate back — no allocation on the barrier path.
        std::swap(shard.handoff, delta);
        shard.handoff_ready = true;
        --handoffs_pending_;
      }
      handoff_cv_.notify_one();
      continue;
    }
    break;  // kStop
  }
}

bool ShardedIngest::try_route(const net::ServiceEvent& event,
                              std::uint64_t scale, std::size_t spin_limit) {
  APPSCOPE_DCHECK(scale >= 1, "ShardedIngest: events must carry scale >= 1");
  SpscQueue<Msg>& queue = shards_[shard_of(event.commune)]->queue;
  const Msg msg{event, scale};
  for (std::size_t attempt = 0;; ++attempt) {
    if (queue.try_push(msg)) return true;
    if (attempt >= spin_limit) return false;
    ++spins_;
    backoff(attempt);
  }
}

void ShardedIngest::route(const net::ServiceEvent& event, std::uint64_t scale) {
  APPSCOPE_DCHECK(scale >= 1, "ShardedIngest: events must carry scale >= 1");
  SpscQueue<Msg>& queue = shards_[shard_of(event.commune)]->queue;
  const Msg msg{event, scale};
  for (std::size_t attempt = 0; !queue.try_push(msg); ++attempt) {
    ++spins_;
    backoff(attempt);
  }
}

void ShardedIngest::push_control(std::uint8_t kind) {
  Msg msg;
  msg.scale = 0;
  msg.event.flags = kind;
  for (auto& shard : shards_) {
    for (std::size_t attempt = 0; !shard->queue.try_push(msg); ++attempt) {
      backoff(attempt);
    }
  }
}

void ShardedIngest::collect_epoch(EventAggregates& rolling) {
  APPSCOPE_REQUIRE(!stopped_, "ShardedIngest: collect_epoch after stop");
  {
    const std::lock_guard<std::mutex> lock(handoff_mutex_);
    handoffs_pending_ = shards_.size();
  }
  push_control(kBarrier);
  std::unique_lock<std::mutex> lock(handoff_mutex_);
  handoff_cv_.wait(lock, [this] { return handoffs_pending_ == 0; });
  // Shard-order merge. Order is irrelevant for the uint64 sums (commutative)
  // but kept fixed anyway so the protocol has one canonical behavior.
  for (auto& shard : shards_) {
    rolling.merge(shard->handoff);
    shard->handoff.reset();
    shard->handoff_ready = false;
  }
}

std::size_t ShardedIngest::queue_depth(std::size_t shard) const {
  APPSCOPE_REQUIRE(shard < shards_.size(), "ShardedIngest: bad shard index");
  return shards_[shard]->queue.size();
}

std::uint64_t ShardedIngest::shard_events(std::size_t shard) const {
  APPSCOPE_REQUIRE(shard < shards_.size(), "ShardedIngest: bad shard index");
  return shards_[shard]->processed.load(std::memory_order_relaxed);
}

void ShardedIngest::set_shard_paused(std::size_t shard, bool paused) {
  APPSCOPE_REQUIRE(shard < shards_.size(), "ShardedIngest: bad shard index");
  shards_[shard]->paused.store(paused, std::memory_order_release);
}

void ShardedIngest::stop() {
  if (stopped_) return;
  stopped_ = true;
  // Unfreeze any test-paused shard so the stop message is consumed.
  for (auto& shard : shards_) {
    shard->paused.store(false, std::memory_order_release);
  }
  push_control(kStop);
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

}  // namespace appscope::serve
