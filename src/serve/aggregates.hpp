// appscope/serve/aggregates.hpp
//
// Integer aggregate state for the streaming ingest plane. The daemon
// accumulates event volumes in unsigned 64-bit counters keyed exactly like
// the batch sinks — national [service][direction][hour], commune totals
// [direction][service * communes + commune], urbanization
// [service][class][direction][hour] — and converts to the double-valued
// io::DatasetAggregates only when an epoch is sealed.
//
// This is what makes epoch snapshots bitwise-identical at any shard or
// thread count: unsigned integer addition is associative and commutative,
// so the merge of per-shard partials is independent of shard assignment and
// arrival interleaving, and the uint64 -> double conversion at seal time is
// a pure function of the totals. (The batch pipeline's double-valued sinks
// get the same guarantee from ordered replay instead; a live stream has no
// single canonical order to replay, so the ingest plane sums integers.)
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "geo/commune.hpp"
#include "io/snapshot.hpp"
#include "net/event.hpp"

namespace appscope::serve {

class EventAggregates {
 public:
  EventAggregates(std::size_t services, std::size_t communes);

  /// Folds one event, its volumes scaled by `scale` (the overload sampler's
  /// inverse keep probability; 1 when not sampling). Integer multiply, so
  /// scaled accumulation is exact.
  void apply(const net::ServiceEvent& event, std::uint64_t scale) noexcept;

  /// Adds another aggregate of the same dimensions (element-wise uint64).
  void merge(const EventAggregates& other);

  /// Zeroes every counter; dimensions and storage are kept.
  void reset() noexcept;

  std::size_t services() const noexcept { return services_; }
  std::size_t communes() const noexcept { return communes_; }
  std::uint64_t events() const noexcept { return events_; }
  std::uint64_t downlink_total() const noexcept { return downlink_; }
  std::uint64_t uplink_total() const noexcept { return uplink_; }

  /// National weekly total of one service, both directions (Zipf tracking).
  std::uint64_t national_total(std::size_t service) const;

  /// National hourly downlink series of one service as doubles (online peak
  /// detection input).
  std::vector<double> national_downlink_series(std::size_t service) const;

  /// Converts to the snapshot-store aggregate bundle. `class_subscribers`
  /// are the per-urbanization-class divisors the dataset needs (computed
  /// from the territory + subscriber base, exactly as the batch path does).
  io::DatasetAggregates to_dataset_aggregates(
      const std::array<std::uint64_t, geo::kUrbanizationCount>&
          class_subscribers) const;

 private:
  std::size_t services_;
  std::size_t communes_;
  /// [service][direction][hour]
  std::vector<std::uint64_t> national_;
  /// [direction][service * communes + commune]
  std::vector<std::uint64_t> commune_totals_;
  /// [service][class][direction][hour]
  std::vector<std::uint64_t> urbanization_;
  std::uint64_t downlink_ = 0;
  std::uint64_t uplink_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace appscope::serve
