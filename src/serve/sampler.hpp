// appscope/serve/sampler.hpp
//
// Deterministic overload shedding for the ingest router. Under sustained
// overload (a shard queue still full after the bounded backpressure spin)
// the router stops trying to deliver every event and switches to systematic
// 1-in-k sampling: of every k consecutive events it keeps exactly one and
// scales its volumes by k, so the aggregates remain unbiased estimates of
// the full stream; the other k - 1 are dropped and counted in net.sampled.
//
// Determinism: the keep/drop decision is a pure function of the event
// sequence number, never of wall time — given the same stream and the same
// sampling engagement, the same events are kept. In live operation the
// *engagement* is load-driven (and therefore timing-dependent); tests and
// deterministic replays pin it with force_sampling(), which samples the
// whole stream from event zero.
//
// Estimator bound (documented contract, asserted by the overload property
// test): systematic 1-in-k sampling with scale k preserves every aggregate
// in expectation, and the absolute error of any total over a sampled stream
// segment of n events is at most k * max_event_volume per k-run, i.e.
// relative error O(k * e_max / (n * e_mean)) — negligible for the small k
// (2..16) the daemon uses and the ~28-byte..~MB event volumes of the
// synthetic stream.
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace appscope::serve {

class OverloadSampler {
 public:
  /// `period` is k in 1-in-k sampling (>= 2). `window` is how many events a
  /// single overload trigger keeps sampling active for; every further
  /// trigger re-arms the window, so sampling persists exactly as long as
  /// the overload does (plus one window of cooldown).
  explicit OverloadSampler(std::uint64_t period, std::uint64_t window = 65536)
      : period_(period), window_(window) {
    APPSCOPE_REQUIRE(period >= 2, "OverloadSampler: period must be >= 2");
    APPSCOPE_REQUIRE(window >= 1, "OverloadSampler: window must be >= 1");
  }

  /// Signals sustained overload: sampling engages (or re-arms) for the next
  /// `window` events.
  void trigger() noexcept {
    sampling_until_ = seq_ + window_;
    ++triggers_;
  }

  /// Forces sampling on for the rest of the stream (deterministic tests and
  /// replays; equivalent to an overload that never ends).
  void force_sampling() noexcept { sampling_until_ = UINT64_MAX; }

  /// Admission decision for the next event. Returns the volume scale to
  /// apply: 0 = drop the event (counted in sampled()), k = keep it with its
  /// volumes scaled by k, 1 = keep verbatim (not sampling).
  std::uint64_t admit() noexcept {
    const std::uint64_t seq = seq_++;
    if (seq >= sampling_until_) return 1;
    if (seq % period_ != 0) {
      ++sampled_;
      return 0;
    }
    return period_;
  }

  bool sampling_active() const noexcept { return seq_ < sampling_until_; }
  std::uint64_t period() const noexcept { return period_; }
  /// Events dropped by sampling so far (the net.sampled counter's source).
  std::uint64_t sampled() const noexcept { return sampled_; }
  /// Overload triggers observed.
  std::uint64_t triggers() const noexcept { return triggers_; }

 private:
  std::uint64_t period_;
  std::uint64_t window_;
  std::uint64_t seq_ = 0;
  std::uint64_t sampling_until_ = 0;
  std::uint64_t sampled_ = 0;
  std::uint64_t triggers_ = 0;
};

}  // namespace appscope::serve
