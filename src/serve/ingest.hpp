// appscope/serve/ingest.hpp
//
// The sharded aggregation plane of appscope_serve: N shard workers, each
// owning one bounded SPSC queue and one private EventAggregates delta. The
// single router thread assigns every event to a shard by commune
// (commune % shards, so one commune's keys never split across shards),
// pushes it lock-free, and the worker folds it into its delta without any
// synchronization at all.
//
// Epochs use a barrier protocol: the router pushes a barrier message into
// every queue; each worker, on reaching it, hands off its accumulated delta
// (an O(1) swap under the handoff mutex) and continues with a zeroed delta.
// collect_epoch() blocks the router until every shard has handed off, then
// merges the deltas into the caller's rolling state in shard order. Because
// the deltas are uint64 aggregates, the merged state is bitwise-identical
// at any shard count (see serve/aggregates.hpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/event.hpp"
#include "serve/aggregates.hpp"
#include "serve/spsc_queue.hpp"

namespace appscope::serve {

class ShardedIngest {
 public:
  struct Options {
    std::size_t shards = 4;
    /// Per-shard queue capacity (rounded up to a power of two).
    std::size_t queue_capacity = 1 << 16;
  };

  ShardedIngest(std::size_t services, std::size_t communes, Options options);
  ~ShardedIngest();
  ShardedIngest(const ShardedIngest&) = delete;
  ShardedIngest& operator=(const ShardedIngest&) = delete;

  std::size_t shard_count() const noexcept { return shards_.size(); }

  std::size_t shard_of(geo::CommuneId commune) const noexcept {
    return commune % shards_.size();
  }

  /// Non-blocking delivery with a bounded spin: retries up to `spin_limit`
  /// times when the shard queue is full, then gives up. Returns false on
  /// give-up (the caller decides: block via route(), or shed via the
  /// overload sampler). `scale` multiplies the event's volumes (sampling
  /// compensation; must be >= 1).
  bool try_route(const net::ServiceEvent& event, std::uint64_t scale,
                 std::size_t spin_limit);

  /// Blocking delivery: spins (then yields) until the shard queue accepts
  /// the event — pure backpressure, never drops.
  void route(const net::ServiceEvent& event, std::uint64_t scale);

  /// Epoch barrier: every shard hands off its delta; the deltas are merged
  /// into `rolling` in shard order. Call from the router thread only; blocks
  /// until all shards have passed the barrier.
  void collect_epoch(EventAggregates& rolling);

  /// Approximate occupancy of one shard queue (metrics).
  std::size_t queue_depth(std::size_t shard) const;

  /// Events one shard worker has folded into its delta since construction
  /// (monotonic; the telemetry plane publishes it as the
  /// serve.shard.<i>.events gauge the watchdog's starvation heuristic
  /// watches).
  std::uint64_t shard_events(std::size_t shard) const;

  /// Test hook: while paused, shard `shard`'s worker stops popping its
  /// queue (events back up) without exiting. Injects exactly the wedged-
  /// worker stall the HealthWatchdog flags. Never pause across a
  /// collect_epoch() call — the barrier would wait on the paused shard.
  /// stop() clears all pauses so shutdown always completes.
  void set_shard_paused(std::size_t shard, bool paused);

  /// Total full-queue retries the router has burned (backpressure measure;
  /// router-thread accounting, read after the run).
  std::uint64_t backpressure_spins() const noexcept { return spins_; }

  /// Stops the workers (drains queues up to the stop message) and joins.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  struct Msg {
    net::ServiceEvent event;
    /// >= 1: event with volume scale; 0: control (event.flags: 1 = barrier,
    /// 2 = stop).
    std::uint64_t scale = 0;
  };
  static constexpr std::uint8_t kBarrier = 1;
  static constexpr std::uint8_t kStop = 2;

  struct Shard {
    explicit Shard(std::size_t services, std::size_t communes,
                   std::size_t queue_capacity)
        : queue(queue_capacity), handoff(services, communes) {}
    SpscQueue<Msg> queue;
    EventAggregates handoff;  // filled at a barrier, guarded by handoff_mutex_
    bool handoff_ready = false;
    std::thread worker;
    /// Events applied by the worker (relaxed; read by the telemetry plane).
    std::atomic<std::uint64_t> processed{0};
    /// Test hook: worker spins without popping while set (see
    /// set_shard_paused).
    std::atomic<bool> paused{false};
  };

  void worker_loop(std::size_t shard_index);
  void push_control(std::uint8_t kind);

  std::size_t services_;
  std::size_t communes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t spins_ = 0;  // router thread only

  std::mutex handoff_mutex_;
  std::condition_variable handoff_cv_;
  std::size_t handoffs_pending_ = 0;
  bool stopped_ = false;
};

}  // namespace appscope::serve
