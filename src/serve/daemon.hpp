// appscope/serve/daemon.hpp
//
// IngestDaemon: the appscope_serve main loop. Owns the whole pipeline —
// scenario → EventReplaySource → router (sampling + backpressure) →
// ShardedIngest → rolling EventAggregates → EpochSealer + online trackers —
// and runs it until the replay finishes, the wall-clock budget expires, or
// the stop flag (SIGTERM) is raised. See DESIGN.md §4h for the
// architecture and the determinism contract.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "serve/config.hpp"

namespace appscope::serve {

/// Run summary, also the soak job's validation surface (mirrors the
/// metrics JSON counters).
struct ServeStats {
  /// Events delivered into shard aggregates (includes scaled keepers).
  std::uint64_t ingested = 0;
  /// Events dropped by overload sampling (net.sampled).
  std::uint64_t sampled = 0;
  /// Sustained-overload triggers observed by the router.
  std::uint64_t overload_triggers = 0;
  /// Full-queue retries burned by the router (backpressure measure).
  std::uint64_t backpressure_spins = 0;
  std::uint64_t epochs_sealed = 0;
  /// Online analyses at the last sealed epoch.
  std::uint64_t rising_fronts = 0;
  std::uint64_t zipf_rank_changes = 0;
  double zipf_exponent = 0.0;
  double wall_seconds = 0.0;
  double events_per_second = 0.0;
  /// Path of latest.snapshot ("" when sealing is disabled).
  std::string latest_snapshot;
};

class IngestDaemon {
 public:
  /// Builds the scenario world (territory, subscribers, catalog) and stages
  /// the replay week. Throws util::InputError on invalid configuration
  /// (epoch_seconds not a whole number of hours, zero shards, ...).
  explicit IngestDaemon(ServeConfig config);
  ~IngestDaemon();
  IngestDaemon(const IngestDaemon&) = delete;
  IngestDaemon& operator=(const IngestDaemon&) = delete;

  /// Runs the ingest loop to completion (or stop signal), seals the final
  /// partial epoch, and returns the run summary. Call at most once.
  ServeStats run();

  /// Staged events per replayed week (diagnostics / test sizing).
  std::size_t week_event_count() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace appscope::serve
