#include "serve/online.hpp"

#include <algorithm>

#include "ts/calendar.hpp"
#include "util/error.hpp"

namespace appscope::serve {

OnlinePeakTracker::OnlinePeakTracker(std::size_t services,
                                     ts::ZScorePeakOptions options)
    : services_(services), options_(options) {
  APPSCOPE_REQUIRE(services > 0, "OnlinePeakTracker: no services");
}

void OnlinePeakTracker::update(const EventAggregates& rolling,
                               std::size_t covered_hours) {
  APPSCOPE_REQUIRE(rolling.services() == services_,
                   "OnlinePeakTracker: dimension mismatch");
  covered_hours = std::min(covered_hours, ts::kHoursPerWeek);
  ++updates_;
  rising_fronts_ = 0;
  services_with_peaks_ = 0;
  // The detrending baseline needs at least one full window on both sides,
  // and the detector itself needs more samples than its lag.
  const std::size_t min_hours =
      std::max<std::size_t>(options_.lag + 2, 2 * options_.detrend_half_window + 2);
  if (covered_hours < min_hours) return;

  ts::ZScorePeakOptions options = options_;
  // Wrapping the detrend window is only meaningful once the weekly cycle is
  // complete; on a partial prefix the window truncates at the live edge.
  options.detrend_wrap =
      options_.detrend_wrap && covered_hours == ts::kHoursPerWeek;

  for (std::size_t s = 0; s < services_; ++s) {
    std::vector<double> series = rolling.national_downlink_series(s);
    series.resize(covered_hours);
    if (options.detrend_half_window > 0 &&
        *std::min_element(series.begin(), series.end()) <= 0.0) {
      continue;  // detrending requires a strictly positive series
    }
    const ts::PeakDetection detection = ts::detect_peaks(series, options);
    rising_fronts_ += detection.rising_fronts.size();
    if (!detection.intervals.empty()) ++services_with_peaks_;
  }
}

ZipfRankTracker::ZipfRankTracker(std::size_t services) : services_(services) {
  APPSCOPE_REQUIRE(services > 0, "ZipfRankTracker: no services");
}

ZipfRankTracker::Update ZipfRankTracker::update(const EventAggregates& rolling) {
  APPSCOPE_REQUIRE(rolling.services() == services_,
                   "ZipfRankTracker: dimension mismatch");
  std::vector<std::uint64_t> totals(services_);
  for (std::size_t s = 0; s < services_; ++s) {
    totals[s] = rolling.national_total(s);
  }
  std::vector<std::size_t> ranking(services_);
  for (std::size_t s = 0; s < services_; ++s) ranking[s] = s;
  std::sort(ranking.begin(), ranking.end(),
            [&totals](std::size_t a, std::size_t b) {
              return totals[a] != totals[b] ? totals[a] > totals[b] : a < b;
            });

  Update result;
  if (have_ranking_) {
    for (std::size_t r = 0; r < services_; ++r) {
      if (ranking[r] != ranking_[r]) ++result.rank_changes;
    }
  }
  total_changes_ += result.rank_changes;
  ranking_ = std::move(ranking);
  have_ranking_ = true;

  std::vector<double> volumes(services_);
  for (std::size_t s = 0; s < services_; ++s) {
    volumes[s] = static_cast<double>(totals[s]);
  }
  const std::vector<double> sizes = stats::rank_sizes(volumes);
  if (sizes.size() >= 4) {
    result.fit = stats::fit_zipf_top_half(sizes);
  }
  return result;
}

}  // namespace appscope::serve
