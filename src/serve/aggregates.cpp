#include "serve/aggregates.hpp"

#include <algorithm>

#include "ts/calendar.hpp"
#include "util/error.hpp"
#include "workload/service.hpp"

namespace appscope::serve {

namespace {
constexpr std::size_t kHours = ts::kHoursPerWeek;
constexpr std::size_t kDirs = workload::kDirectionCount;
constexpr std::size_t kClasses = geo::kUrbanizationCount;
}  // namespace

EventAggregates::EventAggregates(std::size_t services, std::size_t communes)
    : services_(services), communes_(communes) {
  APPSCOPE_REQUIRE(services > 0 && communes > 0,
                   "EventAggregates: empty dimensions");
  national_.assign(services * kDirs * kHours, 0);
  commune_totals_.assign(kDirs * services * communes, 0);
  urbanization_.assign(services * kClasses * kDirs * kHours, 0);
}

void EventAggregates::apply(const net::ServiceEvent& event,
                            std::uint64_t scale) noexcept {
  const std::size_t s = event.service;
  const std::size_t c = event.commune;
  const std::size_t h = event.week_hour();
  const std::size_t u = event.urbanization;
  const std::uint64_t dl = event.downlink_bytes * scale;
  const std::uint64_t ul = event.uplink_bytes * scale;

  std::uint64_t* nat = national_.data() + (s * kDirs) * kHours;
  nat[h] += dl;
  nat[kHours + h] += ul;

  const std::size_t plane = services_ * communes_;  // one direction's block
  commune_totals_[s * communes_ + c] += dl;
  commune_totals_[plane + s * communes_ + c] += ul;

  std::uint64_t* urb =
      urbanization_.data() + ((s * kClasses + u) * kDirs) * kHours;
  urb[h] += dl;
  urb[kHours + h] += ul;

  downlink_ += dl;
  uplink_ += ul;
  ++events_;
}

void EventAggregates::merge(const EventAggregates& other) {
  APPSCOPE_REQUIRE(
      other.services_ == services_ && other.communes_ == communes_,
      "EventAggregates: merging mismatched dimensions");
  for (std::size_t i = 0; i < national_.size(); ++i) {
    national_[i] += other.national_[i];
  }
  for (std::size_t i = 0; i < commune_totals_.size(); ++i) {
    commune_totals_[i] += other.commune_totals_[i];
  }
  for (std::size_t i = 0; i < urbanization_.size(); ++i) {
    urbanization_[i] += other.urbanization_[i];
  }
  downlink_ += other.downlink_;
  uplink_ += other.uplink_;
  events_ += other.events_;
}

void EventAggregates::reset() noexcept {
  std::fill(national_.begin(), national_.end(), 0);
  std::fill(commune_totals_.begin(), commune_totals_.end(), 0);
  std::fill(urbanization_.begin(), urbanization_.end(), 0);
  downlink_ = uplink_ = events_ = 0;
}

std::uint64_t EventAggregates::national_total(std::size_t service) const {
  APPSCOPE_REQUIRE(service < services_, "EventAggregates: bad service");
  const std::uint64_t* nat = national_.data() + (service * kDirs) * kHours;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kDirs * kHours; ++i) total += nat[i];
  return total;
}

std::vector<double> EventAggregates::national_downlink_series(
    std::size_t service) const {
  APPSCOPE_REQUIRE(service < services_, "EventAggregates: bad service");
  const std::uint64_t* nat = national_.data() + (service * kDirs) * kHours;
  std::vector<double> series(kHours);
  for (std::size_t h = 0; h < kHours; ++h) {
    series[h] = static_cast<double>(nat[h]);
  }
  return series;
}

io::DatasetAggregates EventAggregates::to_dataset_aggregates(
    const std::array<std::uint64_t, geo::kUrbanizationCount>&
        class_subscribers) const {
  io::DatasetAggregates out;
  out.services = services_;
  out.communes = communes_;
  out.national.resize(national_.size());
  std::transform(national_.begin(), national_.end(), out.national.begin(),
                 [](std::uint64_t v) { return static_cast<double>(v); });
  out.commune_totals.resize(commune_totals_.size());
  std::transform(commune_totals_.begin(), commune_totals_.end(),
                 out.commune_totals.begin(),
                 [](std::uint64_t v) { return static_cast<double>(v); });
  out.urbanization.resize(urbanization_.size());
  std::transform(urbanization_.begin(), urbanization_.end(),
                 out.urbanization.begin(),
                 [](std::uint64_t v) { return static_cast<double>(v); });
  out.downlink_total = static_cast<double>(downlink_);
  out.uplink_total = static_cast<double>(uplink_);
  out.cells_consumed = events_;
  out.class_subscribers = class_subscribers;
  return out;
}

}  // namespace appscope::serve
