#include "workload/service.hpp"

namespace appscope::workload {

std::string_view category_name(Category c) noexcept {
  switch (c) {
    case Category::kVideoStreaming: return "Video streaming";
    case Category::kAudioStreaming: return "Audio streaming";
    case Category::kSocial: return "Social network";
    case Category::kMessaging: return "Messaging";
    case Category::kCloud: return "Cloud";
    case Category::kAppStore: return "App store";
    case Category::kNews: return "News";
    case Category::kAdult: return "Adult";
    case Category::kGaming: return "Gaming";
    case Category::kMail: return "Mail";
    case Category::kMms: return "MMS";
    case Category::kWeb: return "Web";
    case Category::kOther: return "Other";
  }
  return "???";
}

std::string_view direction_name(Direction d) noexcept {
  return d == Direction::kDownlink ? "downlink" : "uplink";
}

}  // namespace appscope::workload
