// appscope/workload/mobility.hpp
//
// Commuter presence model (extension). The paper attributes part of the
// spatial demand pattern to people *moving*: activity concentrates in
// cities and along transport arteries because subscribers travel there. The
// base generator encodes that statically (urbanization ratios, TGV
// overlay); this model grounds it physically: a share of suburban/rural
// subscribers work in their metro's core commune, so commune-level
// *presence* — and with it traffic — shifts toward the cores during working
// hours and back home in the evening.
//
// The model is an opt-in multiplier on the generator's per-commune volumes
// (ScenarioConfig::enable_mobility); the ablation bench compares Fig. 11
// with and without it.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/territory.hpp"
#include "ts/calendar.hpp"
#include "workload/population.hpp"

namespace appscope::workload {

struct MobilityConfig {
  /// Fraction of subscribers of a metro's satellite communes who commute to
  /// the metro core on working days.
  double commuter_fraction = 0.35;
  /// Work window: presence ramps up around `work_start` and back down
  /// around `work_end` (hours of day, smooth shoulders).
  double work_start = 8.5;
  double work_end = 17.5;
  /// Sigmoid shoulder width in hours.
  double shoulder_hours = 1.0;
};

/// Per-commune, per-hour subscriber-presence multipliers.
class PresenceModel {
 public:
  /// References must outlive the model. Communes without a metro (pure
  /// rural scatter) keep presence 1 at all hours.
  PresenceModel(const geo::Territory& territory, const SubscriberBase& subscribers,
                const MobilityConfig& config = {});

  /// Multiplier on the commune's resident subscriber count at a week hour:
  /// < 1 for commuter homes during the work window, > 1 for metro cores.
  double presence(geo::CommuneId commune, std::size_t week_hour) const;

  /// Fraction of the commune's subscribers commuting out (0 for cores).
  double outflow_fraction(geo::CommuneId commune) const;

  /// Workers arriving into the commune at full work window (0 for homes).
  double inflow_workers(geo::CommuneId commune) const;

  /// Work-window weight at a week hour, in [0, 1] (0 on weekends).
  double work_window(std::size_t week_hour) const;

  /// Total presence-weighted subscribers is conserved at every hour.
  /// (Checked by tests; the model only moves people around.)
  double total_presence_weighted_subscribers(std::size_t week_hour) const;

 private:
  const geo::Territory& territory_;
  const SubscriberBase& subscribers_;
  MobilityConfig config_;
  /// Per commune: fraction of residents commuting out.
  std::vector<double> out_fraction_;
  /// Per commune: absolute worker inflow at full window.
  std::vector<double> inflow_;
};

}  // namespace appscope::workload
