#include "workload/population.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace appscope::workload {

SubscriberBase::SubscriberBase(const geo::Territory& territory,
                               const PopulationConfig& config) {
  APPSCOPE_REQUIRE(config.market_share > 0.0 && config.market_share <= 1.0,
                   "SubscriberBase: market_share must be in (0,1]");
  APPSCOPE_REQUIRE(config.share_jitter >= 0.0 && config.share_jitter < 1.0,
                   "SubscriberBase: share_jitter must be in [0,1)");
  util::Rng rng(config.seed);
  subscribers_.reserve(territory.size());
  for (const auto& commune : territory.communes()) {
    const double jitter = 1.0 + config.share_jitter * rng.normal();
    const double share = std::clamp(config.market_share * jitter, 0.01, 1.0);
    const double expected = share * static_cast<double>(commune.population);
    // At least one subscriber per inhabited commune keeps per-user ratios
    // well-defined everywhere (matching the paper's "several thousands of
    // subscribers per commune" aggregation guarantee at real scale).
    subscribers_.push_back(static_cast<std::uint32_t>(
        std::max(1.0, std::round(expected))));
  }
}

SubscriberBase::SubscriberBase(std::vector<std::uint32_t> counts)
    : subscribers_(std::move(counts)) {
  APPSCOPE_REQUIRE(!subscribers_.empty(), "SubscriberBase: empty counts");
}

std::uint32_t SubscriberBase::subscribers(geo::CommuneId commune) const {
  APPSCOPE_REQUIRE(commune < subscribers_.size(),
                   "SubscriberBase: commune out of range");
  return subscribers_[commune];
}

std::uint64_t SubscriberBase::total() const noexcept {
  std::uint64_t total = 0;
  for (const auto s : subscribers_) total += s;
  return total;
}

std::uint64_t SubscriberBase::total_in(const geo::Territory& territory,
                                       geo::Urbanization u) const {
  APPSCOPE_REQUIRE(territory.size() == subscribers_.size(),
                   "SubscriberBase: territory mismatch");
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < subscribers_.size(); ++i) {
    if (territory.communes()[i].urbanization == u) total += subscribers_[i];
  }
  return total;
}

}  // namespace appscope::workload
