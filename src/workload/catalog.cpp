#include "workload/catalog.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace appscope::workload {

namespace {

using ts::TopicalTime;

/// Builder shorthand for a service entry. dl/ul weights are relative volume
/// shares (Fig. 3 scale); they are converted to per-user byte rates below.
struct Row {
  const char* name;
  Category category;
  double dl_weight;
  double ul_weight;
  TemporalProfileParams temporal;
  SpatialProfile spatial;
};

TemporalProfileParams shape(double night, double day_center, double day_sigma,
                            double evening_weight, double weekend_scale,
                            std::vector<PeakBoost> boosts) {
  TemporalProfileParams p;
  p.night_floor = night;
  p.day_center = day_center;
  p.day_sigma = day_sigma;
  p.evening_weight = evening_weight;
  p.weekend_scale = weekend_scale;
  p.boosts = std::move(boosts);
  return p;
}

SpatialProfile space(double semi, double rural, double tgv,
                     double activity_exponent = 1.0, double residual = 0.45,
                     bool requires_4g = false, double adoption = 1.0) {
  SpatialProfile s;
  s.semi_urban_ratio = semi;
  s.rural_ratio = rural;
  s.tgv_ratio = tgv;
  s.activity_exponent = activity_exponent;
  s.residual_sigma = residual;
  s.requires_4g = requires_4g;
  s.adoption = adoption;
  return s;
}

PeakBoost boost(TopicalTime t, double amplitude, double width = 0.8) {
  return PeakBoost{t, amplitude, width};
}

/// Mean weekly downlink bytes per urban user, summed over all services.
/// ~100 MB/week keeps per-subscriber CDFs in the paper's 1 B – 100 MB span.
constexpr double kUrbanWeeklyDownlinkBytes = 100.0e6;
/// Uplink is less than one twentieth of the total network load (Sec. 3).
constexpr double kUplinkFractionOfTotal = 1.0 / 21.0;

std::vector<Row> paper_rows() {
  std::vector<Row> rows;
  rows.reserve(20);

  // --- Video streaming (aggregate ≈ 46% of downlink) -----------------------
  rows.push_back({"YouTube", Category::kVideoStreaming, 22.0, 4.0,
                  shape(0.10, 15.5, 5.5, 0.0, 1.05,
                        {boost(TopicalTime::kMidday, 0.50),
                         boost(TopicalTime::kEvening, 0.70),
                         boost(TopicalTime::kWeekendEvening, 0.30)}),
                  space(1.00, 0.55, 2.3)});
  rows.push_back({"iTunes", Category::kVideoStreaming, 9.0, 1.5,
                  shape(0.12, 14.5, 5.0, 0.0, 0.85,
                        {boost(TopicalTime::kMidday, 0.90),
                         boost(TopicalTime::kMorningCommute, 0.50),
                         boost(TopicalTime::kWeekendMidday, 0.20)}),
                  space(0.95, 0.50, 2.0)});
  rows.push_back({"Facebook Video", Category::kVideoStreaming, 6.5, 2.0,
                  shape(0.12, 15.0, 5.5, 0.0, 1.00,
                        {boost(TopicalTime::kMidday, 0.70),
                         boost(TopicalTime::kAfternoonCommute, 0.45),
                         boost(TopicalTime::kWeekendMidday, 0.25)}),
                  space(1.00, 0.55, 2.4)});
  rows.push_back({"Instagram video", Category::kVideoStreaming, 4.5, 1.8,
                  shape(0.12, 16.0, 5.0, 0.0, 1.10,
                        {boost(TopicalTime::kMorningBreak, 0.35),
                         boost(TopicalTime::kEvening, 0.50),
                         boost(TopicalTime::kWeekendEvening, 0.25)}),
                  space(1.05, 0.50, 2.5)});
  rows.push_back({"Netflix", Category::kVideoStreaming, 3.0, 0.4,
                  shape(0.08, 17.5, 4.5, 0.0, 1.20,
                        {boost(TopicalTime::kEvening, 0.80),
                         boost(TopicalTime::kWeekendEvening, 0.35)}),
                  // The high-end outlier: 4G-gated, half the communes never
                  // adopt it, and the per-commune dispersion is the largest.
                  space(0.85, 0.15, 1.6, 1.3, 0.75, /*requires_4g=*/true,
                        /*adoption=*/0.55)});

  // --- Audio streaming ------------------------------------------------------
  rows.push_back({"Audio", Category::kAudioStreaming, 4.0, 0.6,
                  shape(0.10, 13.5, 5.5, 0.0, 0.80,
                        {boost(TopicalTime::kMorningCommute, 1.10),
                         boost(TopicalTime::kAfternoonCommute, 0.45)}),
                  space(0.95, 0.50, 2.8)});

  // --- Social networks ------------------------------------------------------
  rows.push_back({"Facebook", Category::kSocial, 8.0, 10.0,
                  shape(0.14, 14.5, 5.5, 0.0, 0.95,
                        {boost(TopicalTime::kMidday, 1.20),
                         boost(TopicalTime::kMorningBreak, 0.40),
                         boost(TopicalTime::kAfternoonCommute, 0.40),
                         boost(TopicalTime::kWeekendMidday, 0.20)}),
                  space(1.00, 0.55, 2.2)});
  rows.push_back({"Twitter", Category::kSocial, 4.0, 3.5,
                  shape(0.13, 14.0, 5.5, 0.0, 0.85,
                        {boost(TopicalTime::kMorningCommute, 0.80),
                         boost(TopicalTime::kMidday, 0.50),
                         boost(TopicalTime::kMorningBreak, 0.35),
                         boost(TopicalTime::kEvening, 0.35)}),
                  space(0.95, 0.50, 2.5)});
  rows.push_back({"Google Services", Category::kWeb, 6.0, 5.0,
                  shape(0.15, 14.5, 5.5, 0.0, 0.90,
                        {boost(TopicalTime::kMidday, 0.60),
                         boost(TopicalTime::kMorningCommute, 0.60),
                         boost(TopicalTime::kAfternoonCommute, 0.40)}),
                  space(1.00, 0.60, 2.0, 0.7, 0.35)});
  rows.push_back({"Instagram", Category::kSocial, 4.0, 8.5,
                  shape(0.12, 15.5, 5.5, 0.0, 1.10,
                        {boost(TopicalTime::kMorningBreak, 0.45),
                         boost(TopicalTime::kMidday, 0.60),
                         boost(TopicalTime::kWeekendEvening, 0.30),
                         boost(TopicalTime::kEvening, 0.40)}),
                  space(1.05, 0.50, 2.6)});

  // --- News / adult ----------------------------------------------------------
  rows.push_back({"News", Category::kNews, 3.0, 0.8,
                  shape(0.12, 12.5, 5.0, 0.0, 0.75,
                        {boost(TopicalTime::kMorningCommute, 1.20),
                         boost(TopicalTime::kMidday, 0.90)}),
                  space(0.95, 0.55, 2.4)});
  rows.push_back({"Adult", Category::kAdult, 3.5, 0.7,
                  shape(0.18, 18.0, 4.5, 0.0, 1.15,
                        {boost(TopicalTime::kEvening, 0.75)}),
                  // "TGV seats are probably not the best environment":
                  // uniquely depressed TGV ratio (Fig. 11 commentary).
                  space(1.00, 0.60, 0.35)});

  // --- App stores / cloud -----------------------------------------------------
  rows.push_back({"Apple store", Category::kAppStore, 3.5, 0.9,
                  shape(0.12, 14.5, 5.0, 0.0, 0.90,
                        {boost(TopicalTime::kMidday, 1.60),
                         boost(TopicalTime::kEvening, 0.45)}),
                  space(0.95, 0.50, 2.0)});
  rows.push_back({"Google Play", Category::kAppStore, 3.0, 0.8,
                  shape(0.12, 14.5, 5.0, 0.0, 0.95,
                        {boost(TopicalTime::kMidday, 1.00),
                         boost(TopicalTime::kWeekendMidday, 0.30)}),
                  space(1.00, 0.55, 2.1)});
  rows.push_back({"iCloud", Category::kCloud, 1.5, 6.0,
                  shape(0.25, 15.0, 6.0, 0.0, 1.00,
                        {boost(TopicalTime::kMidday, 0.30),
                         boost(TopicalTime::kEvening, 0.45),
                         boost(TopicalTime::kWeekendMidday, 0.20)}),
                  // The uniformity outlier: every iPhone pushes backups, so
                  // coupling to the commune activity factor is minimal.
                  space(1.00, 0.80, 1.4, 0.15, 0.30)});

  // --- Messaging ---------------------------------------------------------------
  rows.push_back({"SnapChat", Category::kMessaging, 4.0, 12.0,
                  shape(0.10, 15.5, 5.5, 0.0, 1.15,
                        {boost(TopicalTime::kMorningBreak, 0.35),
                         boost(TopicalTime::kMidday, 0.80),
                         boost(TopicalTime::kAfternoonCommute, 0.50),
                         boost(TopicalTime::kWeekendMidday, 0.30),
                         boost(TopicalTime::kWeekendEvening, 0.35)}),
                  space(1.05, 0.45, 2.4)});
  rows.push_back({"WhatsApp", Category::kMessaging, 1.5, 5.5,
                  shape(0.13, 15.0, 6.0, 0.0, 1.05,
                        {boost(TopicalTime::kMidday, 0.70),
                         boost(TopicalTime::kAfternoonCommute, 0.55),
                         boost(TopicalTime::kEvening, 0.60),
                         boost(TopicalTime::kWeekendMidday, 0.25)}),
                  space(1.00, 0.55, 2.3)});

  // --- Mail / MMS / gaming --------------------------------------------------------
  rows.push_back({"Mail", Category::kMail, 1.2, 2.5,
                  shape(0.15, 12.5, 5.0, 0.0, 0.60,
                        {boost(TopicalTime::kMorningCommute, 0.90),
                         boost(TopicalTime::kMidday, 0.75),
                         boost(TopicalTime::kEvening, 0.25)}),
                  space(0.95, 0.60, 2.2)});
  rows.push_back({"MMS", Category::kMms, 0.3, 1.0,
                  shape(0.12, 14.0, 6.0, 0.0, 1.00,
                        {boost(TopicalTime::kWeekendMidday, 0.35),
                         boost(TopicalTime::kEvening, 0.25)}),
                  space(1.00, 0.75, 1.8, 0.4, 0.35)});
  rows.push_back({"Pokemon Go", Category::kGaming, 1.3, 0.9,
                  shape(0.08, 16.0, 4.5, 0.0, 1.25,
                        {boost(TopicalTime::kAfternoonCommute, 0.45),
                         boost(TopicalTime::kWeekendMidday, 0.40),
                         boost(TopicalTime::kEvening, 0.45)}),
                  space(1.05, 0.45, 2.0)});
  return rows;
}

}  // namespace

ServiceCatalog::ServiceCatalog(std::vector<ServiceSpec> services)
    : services_(std::move(services)) {
  APPSCOPE_REQUIRE(!services_.empty(), "ServiceCatalog: no services");
  for (std::size_t i = 0; i < services_.size(); ++i) {
    for (std::size_t j = i + 1; j < services_.size(); ++j) {
      APPSCOPE_REQUIRE(services_[i].name != services_[j].name,
                       "ServiceCatalog: duplicate service name");
    }
  }
}

ServiceCatalog ServiceCatalog::paper_services() {
  const std::vector<Row> rows = paper_rows();

  double dl_total = 0.0;
  double ul_total = 0.0;
  for (const Row& r : rows) {
    dl_total += r.dl_weight;
    ul_total += r.ul_weight;
  }
  // Convert Fig. 3 relative weights into per-user weekly byte rates so that
  // urban users total ~kUrbanWeeklyDownlinkBytes down and the uplink carries
  // its ~1/21 share of the total load.
  const double dl_scale = kUrbanWeeklyDownlinkBytes / dl_total;
  const double total_load =
      kUrbanWeeklyDownlinkBytes / (1.0 - kUplinkFractionOfTotal);
  const double ul_scale = total_load * kUplinkFractionOfTotal / ul_total;

  std::vector<ServiceSpec> specs;
  specs.reserve(rows.size());
  for (const Row& r : rows) {
    ServiceSpec spec;
    spec.name = r.name;
    spec.category = r.category;
    spec.urban_weekly_bytes_per_user = {r.dl_weight * dl_scale,
                                        r.ul_weight * ul_scale};
    spec.temporal = TemporalProfile(r.temporal);
    spec.spatial = r.spatial;
    specs.push_back(std::move(spec));
  }
  return ServiceCatalog(std::move(specs));
}

ServiceCatalog ServiceCatalog::with_long_tail(std::size_t total_services,
                                              std::uint64_t seed) {
  ServiceCatalog head = paper_services();
  APPSCOPE_REQUIRE(total_services > head.size(),
                   "with_long_tail: total must exceed the paper catalog");

  // Volumes continuing the head's law, shared with full_service_ranking so
  // the generated tail and the analytic tail agree by construction.
  const std::vector<double> dl_law =
      full_service_ranking(head, Direction::kDownlink, total_services, 0.0);
  const std::vector<double> ul_law =
      full_service_ranking(head, Direction::kUplink, total_services, 0.0);

  util::Rng rng(seed);
  std::vector<ServiceSpec> specs = head.services();
  specs.reserve(total_services);
  for (std::size_t r = head.size(); r < total_services; ++r) {
    ServiceSpec spec;
    std::string rank_str = std::to_string(r + 1);
    if (rank_str.size() < 3) rank_str.insert(0, 3 - rank_str.size(), '0');
    spec.name = "svc-" + rank_str;
    spec.category = Category::kOther;
    spec.urban_weekly_bytes_per_user = {dl_law[r], ul_law[r]};

    // A plain diurnal profile with mild per-service variation; tail
    // services are too small to register topical peaks nationally.
    TemporalProfileParams p;
    p.night_floor = rng.uniform(0.08, 0.25);
    p.day_center = rng.uniform(12.0, 18.0);
    p.day_sigma = rng.uniform(4.5, 6.5);
    p.evening_weight = 0.0;
    p.weekend_scale = rng.uniform(0.7, 1.3);
    spec.temporal = TemporalProfile(p);

    SpatialProfile s;
    s.semi_urban_ratio = rng.uniform(0.85, 1.1);
    s.rural_ratio = rng.uniform(0.4, 0.7);
    s.tgv_ratio = rng.uniform(1.2, 2.8);
    s.residual_sigma = rng.uniform(0.3, 0.8);
    spec.spatial = s;
    specs.push_back(std::move(spec));
  }
  return ServiceCatalog(std::move(specs));
}

const ServiceSpec& ServiceCatalog::operator[](ServiceIndex i) const {
  APPSCOPE_REQUIRE(i < services_.size(), "ServiceCatalog: index out of range");
  return services_[i];
}

std::optional<ServiceIndex> ServiceCatalog::find(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < services_.size(); ++i) {
    if (services_[i].name == name) return i;
  }
  return std::nullopt;
}

std::vector<std::string> ServiceCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& s : services_) out.push_back(s.name);
  return out;
}

double ServiceCatalog::total_urban_rate(Direction d) const noexcept {
  double total = 0.0;
  for (const auto& s : services_) total += s.urban_rate(d);
  return total;
}

std::vector<ServiceIndex> ServiceCatalog::ranked(Direction d) const {
  std::vector<ServiceIndex> order(services_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this, d](ServiceIndex a, ServiceIndex b) {
    return services_[a].urban_rate(d) > services_[b].urban_rate(d);
  });
  return order;
}

double ServiceCatalog::category_share(Category c, Direction d) const {
  const double total = total_urban_rate(d);
  APPSCOPE_REQUIRE(total > 0.0, "category_share: zero total rate");
  double cat = 0.0;
  for (const auto& s : services_) {
    if (s.category == c) cat += s.urban_rate(d);
  }
  return cat / total;
}

ServiceCatalog with_popularity_tilt(const ServiceCatalog& catalog, double tilt) {
  if (tilt == 0.0) return catalog;
  const std::size_t n = catalog.size();
  std::vector<ServiceIndex> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&catalog](ServiceIndex a, ServiceIndex b) {
                     return catalog[a].urban_rate(Direction::kDownlink) >
                            catalog[b].urban_rate(Direction::kDownlink);
                   });
  std::vector<ServiceSpec> specs = catalog.services();
  for (std::size_t rank = 0; rank < n; ++rank) {
    const double z =
        n > 1 ? 0.5 - static_cast<double>(rank) / static_cast<double>(n - 1)
              : 0.0;
    const double factor = std::exp(tilt * z);
    for (double& rate : specs[order[rank]].urban_weekly_bytes_per_user) {
      rate *= factor;
    }
  }
  return ServiceCatalog(std::move(specs));
}

double default_zipf_exponent(Direction d) noexcept {
  // Tail-law exponents calibrated so the *measured* top-half fit of the
  // assembled 500-service ranking lands on the paper's Fig. 2 values
  // (-1.69 downlink, -1.55 uplink): the catalog head is flatter than the
  // pure law, which biases the joint fit steeper.
  return d == Direction::kDownlink ? 1.49 : 1.49;
}

std::vector<double> full_service_ranking(const ServiceCatalog& catalog,
                                         Direction d, std::size_t total_services,
                                         double zipf_exponent) {
  APPSCOPE_REQUIRE(total_services > catalog.size(),
                   "full_service_ranking: tail must be non-empty");
  if (zipf_exponent == 0.0) zipf_exponent = default_zipf_exponent(d);

  std::vector<double> head;
  head.reserve(catalog.size());
  for (const auto& s : catalog.services()) head.push_back(s.urban_rate(d));
  std::sort(head.begin(), head.end(), std::greater<>());

  std::vector<double> ranking = head;
  ranking.reserve(total_services);
  // Tail continues the head's Zipf law from the last head rank, then decays
  // with a stretched-exponential cutoff past the midpoint (the "bottom
  // half" break in Fig. 2).
  const double anchor_rank = static_cast<double>(head.size());
  const double anchor_volume = head.back();
  const auto cutoff_rank = static_cast<double>(total_services) / 2.0;
  for (std::size_t r = head.size() + 1; r <= total_services; ++r) {
    const double rank = static_cast<double>(r);
    double volume =
        anchor_volume * std::pow(rank / anchor_rank, -zipf_exponent);
    if (rank > cutoff_rank) {
      // Stretched-exponential break calibrated so the full ranking spans
      // ~10 orders of magnitude (Fig. 2's observation).
      const double over = (rank - cutoff_rank) / 35.0;
      volume *= std::exp(-std::pow(over, 1.3));
    }
    ranking.push_back(volume);
  }
  return ranking;
}

}  // namespace appscope::workload
