// appscope/workload/population.hpp
//
// Subscriber base model: the operator serves a fraction of each commune's
// residents (Orange's French market share put ~30M subscribers over ~66M
// inhabitants). Per-commune counts are deterministic in the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/territory.hpp"

namespace appscope::workload {

struct PopulationConfig {
  /// Fraction of residents subscribed to the studied operator.
  double market_share = 0.45;
  /// Small relative jitter on the share per commune (competition varies).
  double share_jitter = 0.05;
  std::uint64_t seed = 99;
};

/// Per-commune subscriber counts, aligned with territory.communes().
class SubscriberBase {
 public:
  SubscriberBase(const geo::Territory& territory, const PopulationConfig& config);
  /// Restores a base from per-commune counts (snapshot load path).
  explicit SubscriberBase(std::vector<std::uint32_t> counts);

  std::size_t commune_count() const noexcept { return subscribers_.size(); }
  std::uint32_t subscribers(geo::CommuneId commune) const;
  const std::vector<std::uint32_t>& counts() const noexcept { return subscribers_; }

  std::uint64_t total() const noexcept;
  /// Subscribers living in a given urbanization class.
  std::uint64_t total_in(const geo::Territory& territory,
                         geo::Urbanization u) const;

 private:
  std::vector<std::uint32_t> subscribers_;
};

}  // namespace appscope::workload
