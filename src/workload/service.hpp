// appscope/workload/service.hpp
//
// Identity and classification of mobile services. The paper studies 20
// named services spanning heterogeneous categories (Fig. 3) out of >500
// detected in the network.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace appscope::workload {

using ServiceIndex = std::size_t;

enum class Category : std::uint8_t {
  kVideoStreaming = 0,
  kAudioStreaming,
  kSocial,
  kMessaging,
  kCloud,
  kAppStore,
  kNews,
  kAdult,
  kGaming,
  kMail,
  kMms,
  kWeb,
  kOther,
};

inline constexpr std::size_t kCategoryCount = 13;

std::string_view category_name(Category c) noexcept;

enum class Direction : std::uint8_t { kDownlink = 0, kUplink = 1 };

inline constexpr std::size_t kDirectionCount = 2;

std::string_view direction_name(Direction d) noexcept;

}  // namespace appscope::workload
