// appscope/workload/temporal_profile.hpp
//
// Weekly demand-shape model of a mobile service. The shape is a smooth
// diurnal baseline (night trough, broad daytime activity, optional evening
// bump) modulated by sharp "peak boosts" anchored at the paper's seven
// topical times (Fig. 6). The smooth baseline stays below the smoothed
// z-score detection threshold; the boosts are what the detector fires on —
// so each service's boost set is exactly its expected Fig. 6 signature.
#pragma once

#include <vector>

#include "ts/calendar.hpp"
#include "ts/time_series.hpp"

namespace appscope::workload {

/// A localized demand surge at a topical time.
struct PeakBoost {
  ts::TopicalTime time = ts::TopicalTime::kMidday;
  /// Relative surge height: 0.5 ≈ +50% over the local baseline, which is
  /// (approximately) what the Fig. 7 peak-intensity metric reads back.
  double amplitude = 0.5;
  /// Gaussian width of the surge in hours (sharp by construction).
  double width_hours = 0.8;
};

struct TemporalProfileParams {
  /// Relative activity at the overnight trough (fraction of daytime level).
  double night_floor = 0.12;
  /// Center and width of the broad daytime bump (hour of day, hours).
  double day_center = 15.0;
  double day_sigma = 5.5;
  /// Weight of the extra evening bump at ~21h (0 disables).
  double evening_weight = 0.25;
  double evening_sigma = 2.2;
  /// Weekend volume relative to a working day (1 = same).
  double weekend_scale = 0.9;
  /// Sharp surges at topical times.
  std::vector<PeakBoost> boosts;
};

/// Immutable, evaluable weekly profile.
class TemporalProfile {
 public:
  TemporalProfile() = default;
  explicit TemporalProfile(TemporalProfileParams params);

  const TemporalProfileParams& params() const noexcept { return params_; }

  /// Relative demand intensity at a week hour (continuous, > 0).
  /// The absolute scale is arbitrary; generators normalize over the week.
  double evaluate(std::size_t week_hour_index) const;

  /// Full weekly series (168 samples).
  ts::TimeSeries weekly_series(const std::string& label = {}) const;

  /// The topical times this profile surges at, in ring order.
  std::vector<ts::TopicalTime> boost_times() const;

 private:
  double base_level(double weekend_blend, double hour_of_day) const;
  double boost_multiplier(bool weekend, double hour_of_day) const;

  TemporalProfileParams params_;
};

/// Overlay applied to TGV communes: demand follows train operating hours
/// (approx. 6h-22h service window) and is suppressed overnight, producing
/// the distinct temporal dynamics Fig. 11 (bottom) shows for TGV users.
double tgv_modulation(std::size_t week_hour_index);

}  // namespace appscope::workload
