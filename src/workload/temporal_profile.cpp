#include "workload/temporal_profile.hpp"

#include <cmath>

#include "util/error.hpp"

namespace appscope::workload {

namespace {
double gaussian(double x, double center, double sigma) noexcept {
  const double d = (x - center) / sigma;
  return std::exp(-0.5 * d * d);
}

/// Gaussian on the 24-hour circle: distance wraps so the diurnal baseline is
/// continuous across midnight (a cliff there would fire the z-score
/// detector on an artefact of the parametrization, not on demand).
double circular_gaussian(double hour, double center, double sigma) noexcept {
  const double d = std::remainder(hour - center, 24.0) / sigma;
  return std::exp(-0.5 * d * d);
}

/// Smooth indicator of the weekend hours [0, 48) within the measurement
/// week (which starts on Saturday), with ~2 h sigmoid shoulders: Friday
/// night eases into Saturday and Sunday night into Monday without a step.
double weekend_weight(double week_hour) noexcept {
  const double into_monday = 1.0 / (1.0 + std::exp((week_hour - 48.0) / 1.5));
  const double from_friday = 1.0 / (1.0 + std::exp((167.0 - week_hour) / 1.5));
  const double w = into_monday + from_friday;
  return w > 1.0 ? 1.0 : w;
}
}  // namespace

TemporalProfile::TemporalProfile(TemporalProfileParams params)
    : params_(std::move(params)) {
  APPSCOPE_REQUIRE(params_.night_floor > 0.0 && params_.night_floor < 1.0,
                   "TemporalProfile: night_floor must be in (0,1)");
  APPSCOPE_REQUIRE(params_.day_sigma > 0.0 && params_.evening_sigma > 0.0,
                   "TemporalProfile: bump widths must be positive");
  APPSCOPE_REQUIRE(params_.weekend_scale > 0.0,
                   "TemporalProfile: weekend_scale must be positive");
  for (const auto& b : params_.boosts) {
    APPSCOPE_REQUIRE(b.amplitude >= 0.0, "TemporalProfile: negative boost");
    APPSCOPE_REQUIRE(b.width_hours > 0.0, "TemporalProfile: boost width <= 0");
  }
}

double TemporalProfile::base_level(double weekend_blend,
                                   double hour_of_day) const {
  // Smooth diurnal curve: night floor + daytime bump (+ evening bump), all
  // periodic over the 24-hour circle so the weekly series stays smooth at
  // midnight; the weekend scale blends in with sigmoid shoulders.
  double level = params_.night_floor;
  level += (1.0 - params_.night_floor) *
           circular_gaussian(hour_of_day, params_.day_center, params_.day_sigma);
  level += params_.evening_weight *
           circular_gaussian(hour_of_day, 21.0, params_.evening_sigma);
  level *= 1.0 + (params_.weekend_scale - 1.0) * weekend_blend;
  return level;
}

double TemporalProfile::boost_multiplier(bool weekend, double hour_of_day) const {
  double mult = 1.0;
  for (const auto& b : params_.boosts) {
    if (ts::topical_is_weekend(b.time) != weekend) continue;
    // Centre the surge on the middle of the anchor hour (profiles are
    // sampled mid-hour), so the anchor hour itself carries the apex.
    const double anchor =
        static_cast<double>(ts::topical_anchor_hour(b.time)) + 0.5;
    mult += b.amplitude * gaussian(hour_of_day, anchor, b.width_hours);
  }
  return mult;
}

double TemporalProfile::evaluate(std::size_t week_hour_index) const {
  APPSCOPE_REQUIRE(week_hour_index < ts::kHoursPerWeek,
                   "TemporalProfile::evaluate: hour out of range");
  const ts::WeekHour wh = ts::week_hour(week_hour_index);
  // Sample mid-hour so boost Gaussians centred on integer anchors land
  // symmetric energy in the anchor hour.
  const double hod = static_cast<double>(wh.hour_of_day()) + 0.5;
  const double blend =
      weekend_weight(static_cast<double>(week_hour_index) + 0.5);
  return base_level(blend, hod) * boost_multiplier(wh.is_weekend(), hod);
}

ts::TimeSeries TemporalProfile::weekly_series(const std::string& label) const {
  return ts::make_weekly([this](std::size_t h) { return evaluate(h); }, label);
}

std::vector<ts::TopicalTime> TemporalProfile::boost_times() const {
  std::array<bool, ts::kTopicalTimeCount> seen{};
  for (const auto& b : params_.boosts) seen[static_cast<std::size_t>(b.time)] = true;
  std::vector<ts::TopicalTime> out;
  for (const ts::TopicalTime t : ts::all_topical_times()) {
    if (seen[static_cast<std::size_t>(t)]) out.push_back(t);
  }
  return out;
}

double tgv_modulation(std::size_t week_hour_index) {
  APPSCOPE_REQUIRE(week_hour_index < ts::kHoursPerWeek,
                   "tgv_modulation: hour out of range");
  const ts::WeekHour wh = ts::week_hour(week_hour_index);
  const double hod = static_cast<double>(wh.hour_of_day()) + 0.5;
  // Train service window ~6h-22h, with broad departure waves around the
  // morning and evening commutes; overnight the trains (and their
  // passengers' traffic) largely disappear. The waves are kept wide and
  // modest so the TGV subpopulation reshapes its own time series (Fig. 11
  // bottom) without injecting sharp commute peaks into every service's
  // national aggregate.
  const double window =
      1.0 / (1.0 + std::exp(-(hod - 6.0))) * 1.0 / (1.0 + std::exp(hod - 22.0));
  const double waves = 1.0 + 0.35 * gaussian(hod, 8.5, 2.2) +
                       0.3 * gaussian(hod, 18.5, 2.4);
  return 0.05 + window * waves;
}

}  // namespace appscope::workload
