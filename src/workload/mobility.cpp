#include "workload/mobility.hpp"

#include <cmath>

#include "ts/calendar.hpp"
#include "util/error.hpp"

namespace appscope::workload {

namespace {
double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

PresenceModel::PresenceModel(const geo::Territory& territory,
                             const SubscriberBase& subscribers,
                             const MobilityConfig& config)
    : territory_(territory), subscribers_(subscribers), config_(config) {
  APPSCOPE_REQUIRE(territory_.size() == subscribers_.commune_count(),
                   "PresenceModel: territory/subscriber mismatch");
  APPSCOPE_REQUIRE(config_.commuter_fraction >= 0.0 &&
                       config_.commuter_fraction < 1.0,
                   "PresenceModel: commuter_fraction must be in [0,1)");
  APPSCOPE_REQUIRE(config_.work_start < config_.work_end,
                   "PresenceModel: work window is empty");
  APPSCOPE_REQUIRE(config_.shoulder_hours > 0.0,
                   "PresenceModel: shoulder must be positive");

  out_fraction_.assign(territory_.size(), 0.0);
  inflow_.assign(territory_.size(), 0.0);

  // The metro core is the first commune generated for each metro (it holds
  // the core population share); identify it as the metro's most populous
  // commune, which is robust to generator changes.
  std::vector<std::int64_t> core_of_metro(territory_.metros().size(), -1);
  for (const auto& commune : territory_.communes()) {
    if (commune.metro == geo::Commune::kNoMetro) continue;
    auto& core = core_of_metro[commune.metro];
    if (core < 0 ||
        commune.population > territory_.commune(static_cast<geo::CommuneId>(core))
                                 .population) {
      core = commune.id;
    }
  }

  for (const auto& commune : territory_.communes()) {
    if (commune.metro == geo::Commune::kNoMetro) continue;
    const auto core = core_of_metro[commune.metro];
    if (core < 0 || static_cast<geo::CommuneId>(core) == commune.id) continue;
    out_fraction_[commune.id] = config_.commuter_fraction;
    inflow_[static_cast<std::size_t>(core)] +=
        config_.commuter_fraction *
        static_cast<double>(subscribers_.subscribers(commune.id));
  }
}

double PresenceModel::work_window(std::size_t week_hour) const {
  APPSCOPE_REQUIRE(week_hour < ts::kHoursPerWeek,
                   "PresenceModel: hour out of range");
  const ts::WeekHour wh = ts::week_hour(week_hour);
  if (wh.is_weekend()) return 0.0;
  const double hod = static_cast<double>(wh.hour_of_day()) + 0.5;
  return sigmoid((hod - config_.work_start) / config_.shoulder_hours) *
         sigmoid((config_.work_end - hod) / config_.shoulder_hours);
}

double PresenceModel::outflow_fraction(geo::CommuneId commune) const {
  APPSCOPE_REQUIRE(commune < out_fraction_.size(),
                   "PresenceModel: commune out of range");
  return out_fraction_[commune];
}

double PresenceModel::inflow_workers(geo::CommuneId commune) const {
  APPSCOPE_REQUIRE(commune < inflow_.size(), "PresenceModel: commune out of range");
  return inflow_[commune];
}

double PresenceModel::presence(geo::CommuneId commune,
                               std::size_t week_hour) const {
  APPSCOPE_REQUIRE(commune < territory_.size(),
                   "PresenceModel: commune out of range");
  const double w = work_window(week_hour);
  if (w == 0.0) return 1.0;
  const double residents =
      static_cast<double>(subscribers_.subscribers(commune));
  const double present =
      residents * (1.0 - out_fraction_[commune] * w) + inflow_[commune] * w;
  return present / residents;
}

double PresenceModel::total_presence_weighted_subscribers(
    std::size_t week_hour) const {
  double total = 0.0;
  for (geo::CommuneId c = 0; c < territory_.size(); ++c) {
    total += presence(c, week_hour) *
             static_cast<double>(subscribers_.subscribers(c));
  }
  return total;
}

}  // namespace appscope::workload
