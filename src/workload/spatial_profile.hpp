// appscope/workload/spatial_profile.hpp
//
// Where (and how much) a service is consumed. The model reproduces the
// paper's spatial findings:
//  - per-subscriber usage depends on the urbanization level: semi-urban ≈
//    urban, rural ≈ half, TGV ≥ 2x (Fig. 11 top);
//  - per-commune per-user traffic is highly dispersed yet *correlated
//    across services* (Fig. 10), driven by a shared per-commune "digital
//    activity" factor; each service couples to it through an exponent
//    (iCloud couples weakly → uniform over the country → outlier), and adds
//    a service-specific residual;
//  - high-end services can be gated on 4G coverage (Netflix → absent from
//    most rural communes → second outlier, Fig. 9 middle).
#pragma once

#include <cstdint>

#include "geo/commune.hpp"

namespace appscope::workload {

struct SpatialProfile {
  /// Class multipliers relative to urban (Fig. 11 top bars).
  double semi_urban_ratio = 0.95;
  double rural_ratio = 0.5;
  double tgv_ratio = 2.2;
  /// Coupling exponent to the shared per-commune activity factor
  /// (1 = fully driven by it, 0 = uniform over the country).
  double activity_exponent = 1.0;
  /// Lognormal sigma of the service-specific per-commune residual.
  double residual_sigma = 0.45;
  /// The service is unusable without 4G coverage (e.g. long-form HD video).
  bool requires_4g = false;
  /// Probability that a commune adopts the service at all (1 = everywhere).
  double adoption = 1.0;
};

/// Mean per-user rate multiplier for an urbanization class.
double class_ratio(const SpatialProfile& profile, geo::Urbanization u) noexcept;

/// True if the service can be used at all in the commune (coverage gate).
bool usable_in(const SpatialProfile& profile, const geo::Commune& commune) noexcept;

/// The shared per-commune activity factor: lognormal with unit mean,
/// deterministic in (seed, commune id). Urbanization does NOT enter here —
/// class effects are explicit in class_ratio — this factor models residual
/// commune-to-commune heterogeneity (demographics, tourism, workplaces).
double commune_activity_factor(std::uint64_t seed, geo::CommuneId commune,
                               double sigma = 0.9);

/// Full per-commune per-user weekly rate for the service (bytes):
/// urban_base_rate × class_ratio × activity^exponent × residual × adoption
/// gate, zeroed when coverage gating applies. Deterministic in (seed,
/// commune, service_tag); callers encode service index and direction into
/// the tag so downlink and uplink draw independent residuals.
double per_user_rate(const SpatialProfile& profile, double urban_base_rate,
                     const geo::Commune& commune, std::uint64_t seed,
                     std::uint64_t service_tag);

}  // namespace appscope::workload
