// appscope/workload/catalog.hpp
//
// The 20 paper services (Fig. 3) with their full behavioural model, plus the
// long tail of low-volume services completing the >500-service ranking of
// Fig. 2.
//
// Calibration sources (all from the paper):
//  - Fig. 3 rankings: video ≈46% of downlink; social/messaging top-3 uplink;
//  - Sec. 3 footnote: uplink is less than 1/20 of the total network load;
//  - Fig. 6: per-service topical peak times — every service gets a UNIQUE
//    set of peak boosts;
//  - Fig. 7: peak intensity envelopes per topical time (midday up to ~160%,
//    morning commute up to ~120%, evening up to ~80%, ...);
//  - Figs. 9-11: urbanization ratios (semi ≈ 1, rural ≈ 0.5, TGV ≥ 2),
//    Netflix 4G-gated and city-skewed, iCloud uniform, Adult depressed on
//    TGV.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "workload/service.hpp"
#include "workload/spatial_profile.hpp"
#include "workload/temporal_profile.hpp"

namespace appscope::workload {

/// Complete behavioural description of one mobile service.
struct ServiceSpec {
  std::string name;
  Category category;
  /// Mean weekly bytes per urban subscriber, indexed by Direction.
  std::array<double, kDirectionCount> urban_weekly_bytes_per_user{};
  TemporalProfile temporal;
  SpatialProfile spatial;

  double urban_rate(Direction d) const noexcept {
    return urban_weekly_bytes_per_user[static_cast<std::size_t>(d)];
  }
};

/// Immutable collection of services under study.
class ServiceCatalog {
 public:
  explicit ServiceCatalog(std::vector<ServiceSpec> services);

  /// The paper's 20 services with calibrated parameters.
  static ServiceCatalog paper_services();

  /// The paper catalog extended with generated low-volume services up to
  /// `total_services` (>500 detected services in the paper). Tail services
  /// follow the Fig. 2 tail law in volume, carry simple randomized diurnal
  /// profiles and default spatial behaviour, and are fully usable by the
  /// generators — this makes the Fig. 2 ranking measurable end-to-end
  /// rather than synthesized at analysis time.
  static ServiceCatalog with_long_tail(std::size_t total_services = 500,
                                       std::uint64_t seed = 77);

  std::size_t size() const noexcept { return services_.size(); }
  const ServiceSpec& operator[](ServiceIndex i) const;
  const std::vector<ServiceSpec>& services() const noexcept { return services_; }

  /// Index of a service by exact name, if present.
  std::optional<ServiceIndex> find(std::string_view name) const noexcept;

  std::vector<std::string> names() const;

  /// Sum over services of urban per-user rate (proxy for national share
  /// normalization).
  double total_urban_rate(Direction d) const noexcept;

  /// Indices sorted by descending urban rate in the given direction.
  std::vector<ServiceIndex> ranked(Direction d) const;

  /// Share of a category in the summed urban rates (Fig. 3 colour totals).
  double category_share(Category c, Direction d) const;

 private:
  std::vector<ServiceSpec> services_;
};

/// Regional popularity skew: a copy of `catalog` with every service's
/// per-user rates (both directions) scaled by exp(tilt * z), z in
/// [-0.5, 0.5] the service's normalized downlink-rank position (head
/// services at +0.5, ties broken by catalog index so the map is a pure
/// function of the catalog). Positive tilt concentrates traffic on the
/// popular head, negative tilt fattens the tail. tilt == 0 returns the
/// catalog unchanged.
ServiceCatalog with_popularity_tilt(const ServiceCatalog& catalog, double tilt);

/// Synthesizes the full >500-service ranking of Fig. 2: the catalog's
/// services provide the head; tail ranks continue the head's Zipf law with
/// the given exponent, and ranks past the midpoint decay with an additional
/// stretched-exponential cutoff (the paper's "bottom half" break).
/// Returns unnormalized weekly volumes, descending.
std::vector<double> full_service_ranking(const ServiceCatalog& catalog,
                                         Direction d,
                                         std::size_t total_services = 500,
                                         double zipf_exponent = 0.0);

/// Default Fig. 2 exponents (downlink 1.69, uplink 1.55).
double default_zipf_exponent(Direction d) noexcept;

}  // namespace appscope::workload
