#include "workload/spatial_profile.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace appscope::workload {

double class_ratio(const SpatialProfile& profile, geo::Urbanization u) noexcept {
  switch (u) {
    case geo::Urbanization::kUrban: return 1.0;
    case geo::Urbanization::kSemiUrban: return profile.semi_urban_ratio;
    case geo::Urbanization::kRural: return profile.rural_ratio;
    case geo::Urbanization::kTgv: return profile.tgv_ratio;
  }
  return 1.0;
}

bool usable_in(const SpatialProfile& profile, const geo::Commune& commune) noexcept {
  if (profile.requires_4g) return commune.has_4g;
  return commune.has_3g || commune.has_4g;
}

double commune_activity_factor(std::uint64_t seed, geo::CommuneId commune,
                               double sigma) {
  APPSCOPE_REQUIRE(sigma >= 0.0, "commune_activity_factor: sigma < 0");
  util::Rng rng(util::SplitMix64(seed ^ (0xAC71u + commune * 0x9E3779B97F4A7C15ULL)).next());
  // mu = -sigma^2/2 gives a unit-mean lognormal, so the factor redistributes
  // activity across communes without changing class-level means.
  return rng.lognormal(-0.5 * sigma * sigma, sigma);
}

double per_user_rate(const SpatialProfile& profile, double urban_base_rate,
                     const geo::Commune& commune, std::uint64_t seed,
                     std::uint64_t service_tag) {
  if (!usable_in(profile, commune)) return 0.0;

  util::Rng rng(util::SplitMix64(seed ^ (service_tag * 0xD1B54A32D192ED03ULL +
                                         commune.id * 0x9E3779B97F4A7C15ULL))
                    .next());
  if (profile.adoption < 1.0 && !rng.bernoulli(profile.adoption)) return 0.0;

  // Small communes have few potential adopters, so their per-capita usage
  // is dominated by adoption sampling: a village where two residents use a
  // service looks negligible per subscriber while a metropolis averages
  // out. Widening the (unit-mean) activity lognormal as population shrinks
  // reproduces Fig. 8's finding that half of the communes consume a few KB
  // while urban users download tens of MB, without moving class-level
  // means (Fig. 11 slopes).
  constexpr double kAdoptionVariancePopulation = 1500.0;
  const double sigma_scale = std::min(
      8.0, std::sqrt(1.0 + kAdoptionVariancePopulation /
                               std::max(1.0, static_cast<double>(
                                                 commune.population))));
  const double shared =
      commune_activity_factor(seed, commune.id, 0.9 * sigma_scale);
  const double residual =
      rng.lognormal(-0.5 * profile.residual_sigma * profile.residual_sigma,
                    profile.residual_sigma);
  return urban_base_rate * class_ratio(profile, commune.urbanization) *
         std::pow(shared, profile.activity_exponent) * residual;
}

}  // namespace appscope::workload
