#include "core/dataset.hpp"

#include <cmath>

#include "io/snapshot.hpp"
#include "util/error.hpp"

namespace appscope::core {

TrafficDataset::TrafficDataset(
    synth::ScenarioConfig config, std::shared_ptr<const geo::Territory> territory,
    std::shared_ptr<const workload::SubscriberBase> subscribers,
    std::shared_ptr<const workload::ServiceCatalog> catalog)
    : config_(std::move(config)),
      territory_(std::move(territory)),
      subscribers_(std::move(subscribers)),
      catalog_(std::move(catalog)) {
  national_ = std::make_unique<synth::NationalSeriesSink>(catalog_->size());
  commune_totals_ = std::make_unique<synth::CommuneTotalsSink>(catalog_->size(),
                                                               territory_->size());
  urbanization_ = std::make_unique<synth::UrbanizationSeriesSink>(catalog_->size());
  totals_ = std::make_unique<synth::TotalsSink>();

  for (std::size_t u = 0; u < geo::kUrbanizationCount; ++u) {
    class_subscribers_[u] = subscribers_->total_in(
        *territory_, static_cast<geo::Urbanization>(u));
  }
}

void TrafficDataset::consume_stream(
    const std::function<void(synth::TrafficSink&)>& producer) {
  synth::FanoutSink fanout({national_.get(), commune_totals_.get(),
                            urbanization_.get(), totals_.get()});
  producer(fanout);
}

TrafficDataset TrafficDataset::generate(const synth::ScenarioConfig& config) {
  auto territory = std::make_shared<const geo::Territory>(
      geo::build_synthetic_country(config.country));
  auto subscribers = std::make_shared<const workload::SubscriberBase>(
      *territory, config.population);
  // The analytic path honors the scenario's regional popularity skew; the
  // event-level path (from_usage_records) takes its catalog from the caller.
  auto catalog = std::make_shared<const workload::ServiceCatalog>(
      workload::with_popularity_tilt(workload::ServiceCatalog::paper_services(),
                                     config.popularity_tilt));

  TrafficDataset dataset(config, territory, subscribers, catalog);
  std::unique_ptr<workload::PresenceModel> presence;
  if (config.enable_mobility) {
    presence = std::make_unique<workload::PresenceModel>(*territory, *subscribers,
                                                         config.mobility);
  }
  const synth::AnalyticGenerator generator(*territory, *subscribers, *catalog,
                                           config.traffic_seed,
                                           config.temporal_noise_sigma,
                                           presence.get());
  dataset.consume_stream(
      [&generator](synth::TrafficSink& sink) { generator.generate(sink); });
  return dataset;
}

TrafficDataset TrafficDataset::from_usage_records(
    const synth::ScenarioConfig& config, const geo::Territory& territory,
    const workload::SubscriberBase& subscribers,
    const workload::ServiceCatalog& catalog,
    const std::vector<net::UsageRecord>& records) {
  // Copy the shared inputs into owned snapshots so the dataset is
  // self-contained like the generated variant.
  auto territory_copy = std::make_shared<const geo::Territory>(territory);
  auto subscribers_copy =
      std::make_shared<const workload::SubscriberBase>(subscribers);
  auto catalog_copy = std::make_shared<const workload::ServiceCatalog>(catalog);

  TrafficDataset dataset(config, territory_copy, subscribers_copy, catalog_copy);
  dataset.consume_stream([&](synth::TrafficSink& sink) {
    for (const auto& r : records) {
      if (!r.service) continue;  // unclassified traffic: not per-service data
      synth::TrafficCell cell;
      cell.service = *r.service;
      cell.commune = r.commune;
      cell.week_hour = r.week_hour;
      cell.urbanization = territory.commune(r.commune).urbanization;
      cell.downlink_bytes = static_cast<double>(r.downlink_bytes);
      cell.uplink_bytes = static_cast<double>(r.uplink_bytes);
      sink.consume(cell);
    }
  });
  return dataset;
}

void TrafficDataset::save(const std::string& path) const {
  io::DatasetAggregates aggregates;
  aggregates.services = catalog_->size();
  aggregates.communes = territory_->size();
  aggregates.national = national_->snapshot_data();
  aggregates.commune_totals = commune_totals_->snapshot_data();
  aggregates.urbanization = urbanization_->snapshot_data();
  aggregates.downlink_total = totals_->downlink();
  aggregates.uplink_total = totals_->uplink();
  aggregates.cells_consumed = totals_->cells_consumed();
  aggregates.class_subscribers = class_subscribers_;
  io::write_snapshot(path, config_, *territory_, *subscribers_, *catalog_,
                     aggregates);
}

TrafficDataset TrafficDataset::load(const std::string& path) {
  return from_snapshot(io::read_snapshot(path), path);
}

TrafficDataset TrafficDataset::from_snapshot(io::LoadedSnapshot snap,
                                             const std::string& context) {
  TrafficDataset dataset(std::move(snap.config), std::move(snap.territory),
                         std::move(snap.subscribers), std::move(snap.catalog));
  // The constructor recomputes the per-class subscriber divisors from the
  // decoded territory + subscriber base; they must agree with the stored
  // section, or per-user analyses would silently diverge from the original.
  for (std::size_t u = 0; u < geo::kUrbanizationCount; ++u) {
    if (dataset.class_subscribers_[u] != snap.aggregates.class_subscribers[u]) {
      throw util::InputError(
          "snapshot: " + context +
          ": per-class subscriber counts disagree with the stored territory "
          "(corrupted or incompatible snapshot)");
    }
  }
  dataset.national_->restore(snap.aggregates.national);
  dataset.commune_totals_->restore(snap.aggregates.commune_totals);
  dataset.urbanization_->restore(snap.aggregates.urbanization);
  dataset.totals_->restore(snap.aggregates.downlink_total,
                           snap.aggregates.uplink_total,
                           snap.aggregates.cells_consumed);
  return dataset;
}

const std::vector<double>& TrafficDataset::national_series(
    workload::ServiceIndex service, workload::Direction d) const {
  return national_->series(service, d);
}

double TrafficDataset::commune_total(workload::ServiceIndex service,
                                     geo::CommuneId commune,
                                     workload::Direction d) const {
  return commune_totals_->total(service, commune, d);
}

std::vector<double> TrafficDataset::commune_totals(workload::ServiceIndex service,
                                                   workload::Direction d) const {
  return commune_totals_->commune_vector(service, d);
}

std::vector<double> TrafficDataset::per_user_commune_vector(
    workload::ServiceIndex service, workload::Direction d) const {
  std::vector<double> v = commune_totals_->commune_vector(service, d);
  for (std::size_t c = 0; c < v.size(); ++c) {
    v[c] /= static_cast<double>(
        subscribers_->subscribers(static_cast<geo::CommuneId>(c)));
  }
  return v;
}

const std::vector<double>& TrafficDataset::urbanization_series(
    workload::ServiceIndex service, geo::Urbanization u,
    workload::Direction d) const {
  return urbanization_->series(service, u, d);
}

std::vector<double> TrafficDataset::per_user_urbanization_series(
    workload::ServiceIndex service, geo::Urbanization u,
    workload::Direction d) const {
  const auto& raw = urbanization_->series(service, u, d);
  const auto subs = class_subscribers_[static_cast<std::size_t>(u)];
  APPSCOPE_REQUIRE(subs > 0, "per_user_urbanization_series: empty class");
  std::vector<double> out(raw.size());
  for (std::size_t h = 0; h < raw.size(); ++h) {
    out[h] = raw[h] / static_cast<double>(subs);
  }
  return out;
}

double TrafficDataset::national_total(workload::ServiceIndex service,
                                      workload::Direction d) const {
  const auto& series = national_->series(service, d);
  double total = 0.0;
  for (const double v : series) total += v;
  return total;
}

double TrafficDataset::direction_total(workload::Direction d) const {
  return d == workload::Direction::kDownlink ? totals_->downlink()
                                             : totals_->uplink();
}

void TrafficDataset::validate() const {
  const double tol = 1e-6 * (totals_->total() + 1.0);
  for (const auto d :
       {workload::Direction::kDownlink, workload::Direction::kUplink}) {
    double national_sum = 0.0;
    double commune_sum = 0.0;
    double class_sum = 0.0;
    for (std::size_t s = 0; s < catalog_->size(); ++s) {
      for (const double v : national_->series(s, d)) {
        APPSCOPE_CHECK(v >= 0.0, "dataset: negative national volume");
        national_sum += v;
      }
      for (const double v : commune_totals_->commune_vector(s, d)) {
        APPSCOPE_CHECK(v >= 0.0, "dataset: negative commune volume");
        commune_sum += v;
      }
      for (std::size_t u = 0; u < geo::kUrbanizationCount; ++u) {
        for (const double v :
             urbanization_->series(s, static_cast<geo::Urbanization>(u), d)) {
          class_sum += v;
        }
      }
    }
    APPSCOPE_CHECK(std::abs(national_sum - commune_sum) <= tol,
                   "dataset: national/commune aggregate mismatch");
    APPSCOPE_CHECK(std::abs(national_sum - class_sum) <= tol,
                   "dataset: national/urbanization aggregate mismatch");
    APPSCOPE_CHECK(std::abs(national_sum - direction_total(d)) <= tol,
                   "dataset: national/grand-total mismatch");
  }
}

}  // namespace appscope::core
