// appscope/core/dataset.hpp
//
// TrafficDataset is the analysis-ready view of one measurement campaign:
// the commune-level aggregates the paper's probes + geo-referencing produce
// (Sec. 2), together with the territory, the subscriber base and the service
// catalog that generated them.
//
// A dataset is usually built by TrafficDataset::generate (streaming analytic
// generation at any scale); it can also be assembled from the event-level
// pipeline's usage records via TrafficDataset::from_usage_records.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "geo/territory.hpp"
#include "io/snapshot.hpp"
#include "net/probe.hpp"
#include "synth/generator.hpp"
#include "synth/scenario.hpp"
#include "synth/sinks.hpp"
#include "workload/catalog.hpp"
#include "workload/population.hpp"

namespace appscope::core {

class TrafficDataset {
 public:
  /// Builds territory + population + catalog and streams a full synthetic
  /// week into the aggregation sinks.
  static TrafficDataset generate(const synth::ScenarioConfig& config);

  /// Builds the aggregates from event-level probe output instead of the
  /// analytic generator (records with unclassified service are dropped, as
  /// in the paper's per-service analyses).
  static TrafficDataset from_usage_records(
      const synth::ScenarioConfig& config, const geo::Territory& territory,
      const workload::SubscriberBase& subscribers,
      const workload::ServiceCatalog& catalog,
      const std::vector<net::UsageRecord>& records);

  // --- Snapshots ------------------------------------------------------------
  /// Persists the dataset as one self-contained "appscope.snapshot/1" file
  /// (config, territory, subscribers, catalog and all aggregates). Throws
  /// util::InputError on I/O failure.
  void save(const std::string& path) const;

  /// Reconstructs a dataset from a snapshot written by save(). The loaded
  /// aggregates are bitwise-identical to the saved ones, so any analysis on
  /// the loaded dataset reproduces the original byte for byte. Throws
  /// util::InputError on any malformed, truncated or incompatible file.
  static TrafficDataset load(const std::string& path);

  /// Same reconstruction from an already-decoded snapshot (load() is
  /// read_snapshot + this). Lets callers that hold io::LoadedSnapshot
  /// values — e.g. the region merge layer — build datasets without
  /// re-reading and re-validating the file. `context` labels errors
  /// (usually the source path).
  static TrafficDataset from_snapshot(io::LoadedSnapshot snapshot,
                                      const std::string& context);

  // --- Dimensions -----------------------------------------------------------
  std::size_t service_count() const noexcept { return catalog_->size(); }
  std::size_t commune_count() const noexcept { return territory_->size(); }

  const geo::Territory& territory() const noexcept { return *territory_; }
  const workload::SubscriberBase& subscribers() const noexcept {
    return *subscribers_;
  }
  const workload::ServiceCatalog& catalog() const noexcept { return *catalog_; }
  const synth::ScenarioConfig& config() const noexcept { return config_; }

  // --- Aggregates ------------------------------------------------------------
  /// Nationwide hourly series (168 samples) of one service.
  const std::vector<double>& national_series(workload::ServiceIndex service,
                                             workload::Direction d) const;

  /// Weekly total volume of one service in one commune.
  double commune_total(workload::ServiceIndex service, geo::CommuneId commune,
                       workload::Direction d) const;

  /// Weekly totals of one service over all communes (index = commune id).
  std::vector<double> commune_totals(workload::ServiceIndex service,
                                     workload::Direction d) const;

  /// Weekly per-subscriber volume of one service over all communes — the
  /// paper's "average traffic per user" vectors (Figs. 8-10).
  std::vector<double> per_user_commune_vector(workload::ServiceIndex service,
                                              workload::Direction d) const;

  /// Hourly series of one service restricted to one urbanization class.
  const std::vector<double>& urbanization_series(workload::ServiceIndex service,
                                                 geo::Urbanization u,
                                                 workload::Direction d) const;

  /// Per-subscriber hourly series of a service in one urbanization class
  /// (series divided by the class's subscriber count).
  std::vector<double> per_user_urbanization_series(workload::ServiceIndex service,
                                                   geo::Urbanization u,
                                                   workload::Direction d) const;

  /// Nationwide weekly volume of one service.
  double national_total(workload::ServiceIndex service,
                        workload::Direction d) const;

  /// Total network volume in one direction.
  double direction_total(workload::Direction d) const;

  /// Consistency checks (non-negative volumes, aggregate coherence between
  /// sinks); throws InvariantError on failure. Cheap; run by tests.
  void validate() const;

 private:
  TrafficDataset(synth::ScenarioConfig config,
                 std::shared_ptr<const geo::Territory> territory,
                 std::shared_ptr<const workload::SubscriberBase> subscribers,
                 std::shared_ptr<const workload::ServiceCatalog> catalog);

  void consume_stream(const std::function<void(synth::TrafficSink&)>& producer);

  synth::ScenarioConfig config_;
  std::shared_ptr<const geo::Territory> territory_;
  std::shared_ptr<const workload::SubscriberBase> subscribers_;
  std::shared_ptr<const workload::ServiceCatalog> catalog_;

  std::unique_ptr<synth::NationalSeriesSink> national_;
  std::unique_ptr<synth::CommuneTotalsSink> commune_totals_;
  std::unique_ptr<synth::UrbanizationSeriesSink> urbanization_;
  std::unique_ptr<synth::TotalsSink> totals_;

  /// Subscriber totals per urbanization class (cached).
  std::array<std::uint64_t, geo::kUrbanizationCount> class_subscribers_{};
};

}  // namespace appscope::core
