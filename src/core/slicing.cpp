#include "core/slicing.hpp"

#include "util/error.hpp"

namespace appscope::core {

SlicingReport analyze_slicing(const TrafficDataset& dataset,
                              workload::Direction d) {
  SlicingReport report;
  report.direction = d;

  std::vector<double> hourly_total(ts::kHoursPerWeek, 0.0);
  for (std::size_t s = 0; s < dataset.service_count(); ++s) {
    const auto& series = dataset.national_series(s, d);
    SliceDemand slice;
    slice.service = s;
    slice.name = dataset.catalog()[s].name;
    double sum = 0.0;
    for (std::size_t h = 0; h < series.size(); ++h) {
      sum += series[h];
      hourly_total[h] += series[h];
      if (series[h] > slice.peak) {
        slice.peak = series[h];
        slice.peak_hour = h;
      }
    }
    slice.mean = sum / static_cast<double>(series.size());
    report.static_capacity += slice.peak;
    report.slices.push_back(std::move(slice));
  }

  for (std::size_t h = 0; h < hourly_total.size(); ++h) {
    if (hourly_total[h] > report.dynamic_capacity) {
      report.dynamic_capacity = hourly_total[h];
      report.busy_hour = h;
    }
  }
  APPSCOPE_CHECK(report.dynamic_capacity <= report.static_capacity + 1e-6,
                 "slicing: hourly total exceeded the sum of peaks");
  return report;
}

la::Matrix peak_cooccurrence(const TrafficDataset& dataset,
                             workload::Direction d, double threshold) {
  APPSCOPE_REQUIRE(threshold > 0.0 && threshold <= 1.0,
                   "peak_cooccurrence: threshold must be in (0,1]");
  const std::size_t n = dataset.service_count();

  // Per-service boolean "near own peak" per hour.
  std::vector<std::vector<bool>> hot(n,
                                     std::vector<bool>(ts::kHoursPerWeek, false));
  for (std::size_t s = 0; s < n; ++s) {
    const auto& series = dataset.national_series(s, d);
    double peak = 0.0;
    for (const double v : series) peak = std::max(peak, v);
    for (std::size_t h = 0; h < series.size(); ++h) {
      hot[s][h] = series[h] >= threshold * peak;
    }
  }

  la::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      bool together = false;
      for (std::size_t h = 0; h < ts::kHoursPerWeek && !together; ++h) {
        together = hot[i][h] && hot[j][h];
      }
      m(i, j) = m(j, i) = together ? 1.0 : 0.0;
    }
  }
  return m;
}

}  // namespace appscope::core
