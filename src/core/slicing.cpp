#include "core/slicing.hpp"

#include <span>

#include "la/simd.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace appscope::core {

namespace {

/// Services per parallel chunk; fixed so per-slot work partitions the same
/// way at every thread count (each slot is independent anyway).
constexpr std::size_t kServiceChunk = 4;

/// The shared row analysis both the dataset path and the query path run.
/// `row(s)` returns the 168-hour national series of service s; rows may be
/// fetched concurrently from pool threads (the lazy snapshot reader and the
/// in-memory dataset both allow that).
template <typename RowFn, typename NameFn>
SlicingReport analyze_rows(std::size_t service_count, const RowFn& row,
                           const NameFn& name, workload::Direction d) {
  const la::simd::Kernels& k = la::simd::active();
  SlicingReport report;
  report.direction = d;
  report.slices.resize(service_count);

  // Per-slice peak / mean: independent slots, any thread order.
  util::parallel_for(
      0, service_count, kServiceChunk, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          const std::span<const double> series = row(s);
          SliceDemand& slice = report.slices[s];
          slice.service = s;
          slice.name = name(s);
          const double peak = k.max_value(series.data(), series.size());
          if (peak > 0.0) {
            slice.peak = peak;
            slice.peak_hour =
                k.find_first_equal(series.data(), series.size(), peak);
          }
          slice.mean = k.sum_stripes(series.data(), series.size()) /
                       static_cast<double>(series.size());
        }
      });

  // Sequential, service-ordered combines: the sum of peaks and the
  // elementwise hourly total are the same IEEE operation sequence at every
  // thread count.
  std::vector<double> hourly_total(ts::kHoursPerWeek, 0.0);
  for (std::size_t s = 0; s < service_count; ++s) {
    report.static_capacity += report.slices[s].peak;
    const std::span<const double> series = row(s);
    k.accumulate(hourly_total.data(), series.data(), hourly_total.size());
  }
  const double busy =
      k.max_value(hourly_total.data(), hourly_total.size());
  if (busy > 0.0) {
    report.dynamic_capacity = busy;
    report.busy_hour =
        k.find_first_equal(hourly_total.data(), hourly_total.size(), busy);
  }
  APPSCOPE_CHECK(report.dynamic_capacity <= report.static_capacity + 1e-6,
                 "slicing: hourly total exceeded the sum of peaks");
  return report;
}

template <typename RowFn>
la::Matrix cooccurrence_rows(std::size_t service_count, const RowFn& row,
                             double threshold) {
  APPSCOPE_REQUIRE(threshold > 0.0 && threshold <= 1.0,
                   "peak_cooccurrence: threshold must be in (0,1]");
  const la::simd::Kernels& k = la::simd::active();
  const std::size_t n = service_count;

  // Per-service boolean "near own peak" per hour (independent slots).
  std::vector<std::vector<bool>> hot(n,
                                     std::vector<bool>(ts::kHoursPerWeek, false));
  util::parallel_for(0, n, kServiceChunk, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      const std::span<const double> series = row(s);
      const double top = k.max_value(series.data(), series.size());
      const double peak = top > 0.0 ? top : 0.0;
      for (std::size_t h = 0; h < series.size(); ++h) {
        hot[s][h] = series[h] >= threshold * peak;
      }
    }
  });

  la::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      bool together = false;
      for (std::size_t h = 0; h < ts::kHoursPerWeek && !together; ++h) {
        together = hot[i][h] && hot[j][h];
      }
      m(i, j) = m(j, i) = together ? 1.0 : 0.0;
    }
  }
  return m;
}

}  // namespace

SlicingReport analyze_slicing(const TrafficDataset& dataset,
                              workload::Direction d) {
  return analyze_rows(
      dataset.service_count(),
      [&](std::size_t s) {
        return std::span<const double>(dataset.national_series(s, d));
      },
      [&](std::size_t s) { return dataset.catalog()[s].name; }, d);
}

SlicingReport analyze_slicing(const query::SnapshotView& view,
                              workload::Direction d) {
  return analyze_rows(
      view.services(), [&](std::size_t s) { return view.national_row(s, d); },
      [&](std::size_t s) { return view.catalog()[s].name; }, d);
}

la::Matrix peak_cooccurrence(const TrafficDataset& dataset,
                             workload::Direction d, double threshold) {
  return cooccurrence_rows(
      dataset.service_count(),
      [&](std::size_t s) {
        return std::span<const double>(dataset.national_series(s, d));
      },
      threshold);
}

la::Matrix peak_cooccurrence(const query::SnapshotView& view,
                             workload::Direction d, double threshold) {
  return cooccurrence_rows(
      view.services(), [&](std::size_t s) { return view.national_row(s, d); },
      threshold);
}

}  // namespace appscope::core
