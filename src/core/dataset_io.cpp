#include "core/dataset_io.hpp"

#include <filesystem>
#include <fstream>
#include <functional>
#include <ostream>
#include <system_error>

#include "io/serialize.hpp"
#include "io/snapshot.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace appscope::core {

namespace {
constexpr std::array<workload::Direction, 2> kDirections = {
    workload::Direction::kDownlink, workload::Direction::kUplink};
}

void write_national_series_csv(const TrafficDataset& dataset, std::ostream& out) {
  util::CsvWriter csv(out);
  csv.write_row({"service", "direction", "hour", "bytes"});
  for (std::size_t s = 0; s < dataset.service_count(); ++s) {
    for (const auto d : kDirections) {
      const auto& series = dataset.national_series(s, d);
      for (std::size_t h = 0; h < series.size(); ++h) {
        csv.write_row({dataset.catalog()[s].name,
                       std::string(workload::direction_name(d)),
                       std::to_string(h),
                       util::format_double_roundtrip(series[h])});
      }
    }
  }
}

void write_commune_totals_csv(const TrafficDataset& dataset, std::ostream& out) {
  util::CsvWriter csv(out);
  csv.write_row({"service", "direction", "commune", "urbanization", "bytes",
                 "bytes_per_user"});
  for (std::size_t s = 0; s < dataset.service_count(); ++s) {
    for (const auto d : kDirections) {
      const auto totals = dataset.commune_totals(s, d);
      const auto per_user = dataset.per_user_commune_vector(s, d);
      for (std::size_t c = 0; c < totals.size(); ++c) {
        csv.write_row(
            {dataset.catalog()[s].name, std::string(workload::direction_name(d)),
             std::to_string(c),
             std::string(geo::urbanization_name(
                 dataset.territory().communes()[c].urbanization)),
             util::format_double_roundtrip(totals[c]),
             util::format_double_roundtrip(per_user[c])});
      }
    }
  }
}

void write_urbanization_series_csv(const TrafficDataset& dataset,
                                   std::ostream& out) {
  util::CsvWriter csv(out);
  csv.write_row({"service", "direction", "class", "hour", "bytes"});
  for (std::size_t s = 0; s < dataset.service_count(); ++s) {
    for (const auto d : kDirections) {
      for (std::size_t u = 0; u < geo::kUrbanizationCount; ++u) {
        const auto cls = static_cast<geo::Urbanization>(u);
        const auto& series = dataset.urbanization_series(s, cls, d);
        for (std::size_t h = 0; h < series.size(); ++h) {
          csv.write_row({dataset.catalog()[s].name,
                         std::string(workload::direction_name(d)),
                         std::string(geo::urbanization_name(cls)),
                         std::to_string(h),
                         util::format_double_roundtrip(series[h])});
        }
      }
    }
  }
}

std::vector<std::string> export_dataset_csv(const TrafficDataset& dataset,
                                            const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) throw util::InputError("export_dataset_csv: cannot create " + directory);

  std::vector<std::string> written;
  const auto write_file = [&](const std::string& name, auto&& writer) {
    const std::string path = directory + "/" + name;
    std::ofstream out(path);
    if (!out) throw util::InputError("export_dataset_csv: cannot open " + path);
    writer(dataset, out);
    written.push_back(path);
  };
  write_file("national_series.csv", write_national_series_csv);
  write_file("commune_totals.csv", write_commune_totals_csv);
  write_file("urbanization_series.csv", write_urbanization_series_csv);
  return written;
}

std::vector<CommuneTotalsRow> read_commune_totals_csv(std::string_view text) {
  const auto rows = util::CsvReader::parse(text);
  APPSCOPE_REQUIRE(!rows.empty(), "read_commune_totals_csv: empty document");
  const std::vector<std::string> expected_header{
      "service", "direction", "commune", "urbanization", "bytes",
      "bytes_per_user"};
  if (rows.front() != expected_header) {
    throw util::InputError("read_commune_totals_csv: unexpected header");
  }
  std::vector<CommuneTotalsRow> out;
  out.reserve(rows.size() - 1);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& r = rows[i];
    if (r.size() != expected_header.size()) {
      throw util::InputError("read_commune_totals_csv: bad arity at row " +
                             std::to_string(i));
    }
    CommuneTotalsRow row;
    row.service = r[0];
    if (r[1] == "downlink") {
      row.direction = workload::Direction::kDownlink;
    } else if (r[1] == "uplink") {
      row.direction = workload::Direction::kUplink;
    } else {
      throw util::InputError("read_commune_totals_csv: bad direction " + r[1]);
    }
    row.commune = static_cast<geo::CommuneId>(util::parse_int(r[2]));
    row.urbanization = r[3];
    row.bytes = util::parse_double(r[4]);
    row.bytes_per_user = util::parse_double(r[5]);
    out.push_back(std::move(row));
  }
  return out;
}

TrafficDataset load_or_generate_snapshot(const synth::ScenarioConfig& config,
                                         const std::string& path) {
  APPSCOPE_REQUIRE(!path.empty(), "load_or_generate_snapshot: empty path");
  if (std::filesystem::exists(path)) {
    const std::uint64_t stored = io::read_snapshot_config_hash(path);
    const std::uint64_t wanted = io::config_hash(config);
    if (stored != wanted) {
      throw util::InputError(
          "snapshot: " + path +
          ": stored scenario config does not match the requested one "
          "(delete the file to regenerate)");
    }
    return TrafficDataset::load(path);
  }
  TrafficDataset dataset = TrafficDataset::generate(config);
  dataset.save(path);
  return dataset;
}

std::string find_latest_snapshot(const std::string& directory) {
  return io::find_latest_snapshot(directory);
}

std::string find_latest_snapshot(const std::string& directory,
                                 const std::string& subdir) {
  return io::find_latest_snapshot(directory, subdir);
}

namespace detail {

namespace {
std::function<void(int)> g_epoch_load_hook;
}  // namespace

void set_epoch_load_test_hook(std::function<void(int)> hook) {
  g_epoch_load_hook = std::move(hook);
}

}  // namespace detail

TrafficDataset load_epoch_snapshot(const std::string& directory) {
  // The sealer publishes latest.snapshot by atomic rename, so a reader can
  // lose the race between resolving the path and opening/validating it
  // (ENOENT, or a half-observed replacement failing CRC). A bounded retry
  // re-resolves and reloads: each retry observes a complete published file,
  // so persistent failure means real corruption, not racing.
  constexpr int kAttempts = 3;
  for (int attempt = 0;; ++attempt) {
    const std::string path = find_latest_snapshot(directory);
    if (path.empty()) {
      throw util::InputError("load_epoch_snapshot: no snapshot in " + directory);
    }
    if (detail::g_epoch_load_hook) detail::g_epoch_load_hook(attempt);
    try {
      return TrafficDataset::load(path);
    } catch (const util::InputError&) {
      if (attempt + 1 >= kAttempts) throw;
    }
  }
}

}  // namespace appscope::core
