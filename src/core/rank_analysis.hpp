// appscope/core/rank_analysis.hpp
//
// Service-ranking analyses (paper Sec. 3):
//  - Fig. 2: the >500-service rank/volume curve, Zipf-fitted over the top
//    half, with the bottom-half cutoff quantified;
//  - Fig. 3: the 20 studied services ranked by direction, with per-service
//    and per-category traffic shares.
#pragma once

#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "stats/zipf.hpp"
#include "workload/service.hpp"

namespace appscope::core {

struct RankedService {
  workload::ServiceIndex service = 0;
  std::string name;
  workload::Category category = workload::Category::kOther;
  /// Weekly volume in this direction.
  double volume = 0.0;
  /// Share of the catalog's total volume in this direction.
  double share = 0.0;
};

/// Fig. 3: the measured top-service ranking for one direction.
struct TopServicesReport {
  workload::Direction direction = workload::Direction::kDownlink;
  std::vector<RankedService> ranking;  // descending by volume
  /// Share of each category in the catalog total.
  std::array<double, workload::kCategoryCount> category_shares{};

  double category_share(workload::Category c) const noexcept {
    return category_shares[static_cast<std::size_t>(c)];
  }
};

TopServicesReport analyze_top_services(const TrafficDataset& dataset,
                                       workload::Direction d);

/// Fig. 2: the full >500-service ranking: the measured catalog head extended
/// with the synthetic long tail, normalized, and Zipf-fitted.
struct ServiceRankingReport {
  workload::Direction direction = workload::Direction::kDownlink;
  /// Normalized volumes (descending); entry 0 is 1 by construction... no:
  /// normalized so the total sums to 1 (the paper plots normalized traffic).
  std::vector<double> normalized_volumes;
  /// Zipf fit over the top half of the ranking.
  stats::ZipfFit top_half_fit;
  /// Fit over the full ranking (degrades vs top-half: evidence of cutoff).
  stats::ZipfFit full_fit;
  /// Actual/extrapolated volume at the last rank (<< 1 = strong cutoff).
  double tail_cutoff_ratio = 0.0;
};

ServiceRankingReport analyze_service_ranking(const TrafficDataset& dataset,
                                             workload::Direction d,
                                             std::size_t total_services = 500);

}  // namespace appscope::core
