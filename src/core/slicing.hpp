// appscope/core/slicing.hpp
//
// The paper's motivating network-management application (Sec. 1): dynamic
// orchestration of per-service network slices builds on the *temporal
// complementarity* of service demands. This module quantifies it:
//
//  - static provisioning reserves each slice's own weekly peak;
//  - dynamic provisioning reallocates hourly, so the network only needs the
//    peak of the hourly *total*;
//  - the gap between the two is the multiplexing gain, which exists exactly
//    because services peak at different topical times (Figs. 6-7).
//
// Both entry points — the in-memory TrafficDataset and the query-layer
// SnapshotView — run the same kernel-based row analysis (la::simd striped
// sums + order-independent max), so the two paths produce bitwise-identical
// reports at any thread count under either SIMD dispatch.
#pragma once

#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "la/matrix.hpp"
#include "query/snapshot_view.hpp"

namespace appscope::core {

struct SliceDemand {
  workload::ServiceIndex service = 0;
  std::string name;
  /// Peak hourly demand over the week (bytes/hour).
  double peak = 0.0;
  /// Mean hourly demand (bytes/hour).
  double mean = 0.0;
  /// Hour of the week at which the peak occurs.
  std::size_t peak_hour = 0;

  double peak_to_mean() const noexcept { return mean > 0.0 ? peak / mean : 0.0; }
};

struct SlicingReport {
  workload::Direction direction = workload::Direction::kDownlink;
  std::vector<SliceDemand> slices;
  /// Sum of per-slice peaks: capacity needed with static slices.
  double static_capacity = 0.0;
  /// Peak of the hourly total: capacity needed with hourly reallocation.
  double dynamic_capacity = 0.0;
  /// Hour of the network-wide peak.
  std::size_t busy_hour = 0;

  /// Fraction of capacity saved by dynamic reallocation, in [0, 1).
  double multiplexing_gain() const noexcept {
    return static_capacity > 0.0 ? 1.0 - dynamic_capacity / static_capacity
                                 : 0.0;
  }
};

/// Computes the slicing economics over the nationwide hourly series.
SlicingReport analyze_slicing(const TrafficDataset& dataset,
                              workload::Direction d);

/// Same analysis over a (lazily mapped) snapshot via the query layer —
/// touches only the national-series and catalog sections, and produces a
/// report bitwise identical to the dataset overload on the snapshot of the
/// same dataset.
SlicingReport analyze_slicing(const query::SnapshotView& view,
                              workload::Direction d);

/// Peak-hour co-occurrence: entry (i, j) = 1 if services i and j reach
/// >= `threshold` of their own peak in the same hour at least once.
/// Sparse co-occurrence across services is the complementarity that makes
/// the multiplexing gain possible.
la::Matrix peak_cooccurrence(const TrafficDataset& dataset,
                             workload::Direction d, double threshold = 0.9);

/// Query-path overload, bitwise identical to the dataset overload.
la::Matrix peak_cooccurrence(const query::SnapshotView& view,
                             workload::Direction d, double threshold = 0.9);

}  // namespace appscope::core
