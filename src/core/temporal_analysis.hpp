// appscope/core/temporal_analysis.hpp
//
// Nationwide temporal analyses (paper Sec. 4):
//  - Fig. 5: exhaustive k-Shape sweep over k with four quality indices,
//    optionally repeated with the Euclidean k-means baseline (ablation);
//  - Figs. 4/6: smoothed z-score peak detection on every service's weekly
//    series and the mapping of peaks onto the seven topical times;
//  - Fig. 7: peak intensities per service per topical time.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "ts/cluster_quality.hpp"
#include "ts/kshape.hpp"
#include "ts/peaks.hpp"

namespace appscope::core {

/// One row of the Fig. 5 sweep.
struct ClusterQualityRow {
  std::size_t k = 0;
  ts::QualityIndices kshape;
  /// Present when the k-means baseline was requested.
  std::optional<ts::QualityIndices> kmeans;
};

struct ClusterSweepReport {
  workload::Direction direction = workload::Direction::kDownlink;
  std::vector<ClusterQualityRow> rows;  // k = k_min .. k_max

  /// k minimizing Davies-Bouldin* (the "winner" if one existed).
  std::size_t best_k_by_db_star() const;
  /// k maximizing Silhouette.
  std::size_t best_k_by_silhouette() const;
};

struct ClusterSweepOptions {
  std::size_t k_min = 2;
  std::size_t k_max = 19;
  bool include_kmeans_baseline = false;
  std::uint64_t seed = 7;
};

/// Runs k-Shape (and optionally k-means) over the z-normalized national
/// series of all services for every k in [k_min, k_max], scoring each
/// clustering with the four indices (SBD geometry for k-Shape, Euclidean
/// for k-means).
ClusterSweepReport cluster_sweep(const TrafficDataset& dataset,
                                 workload::Direction d,
                                 const ClusterSweepOptions& opts = {});

/// Per-service peak analysis (Figs. 4, 6, 7).
struct ServicePeaks {
  workload::ServiceIndex service = 0;
  std::string name;
  ts::PeakDetection detection;
  /// Topical times at which the service peaks (Fig. 6 sectors).
  std::vector<ts::TopicalTime> topical_times;
  /// Intensity per topical time (max/min - 1 over the detected interval),
  /// or nullopt when the service has no peak there (Fig. 7 bars).
  std::array<std::optional<double>, ts::kTopicalTimeCount> intensities{};
  /// Rising fronts that fall outside every topical time window.
  std::size_t unmatched_fronts = 0;
};

struct PeakReport {
  workload::Direction direction = workload::Direction::kDownlink;
  ts::ZScorePeakOptions options;
  std::vector<ServicePeaks> services;

  /// Number of distinct topical times observed across all services.
  std::size_t distinct_topical_times() const;
};

PeakReport analyze_peaks(const TrafficDataset& dataset, workload::Direction d,
                         const ts::ZScorePeakOptions& opts = {});

/// Weekend/working-day dichotomy (visible in every Fig. 4 series): the
/// ratio of a service's mean hourly volume on weekends to working days,
/// plus the night-to-day swing.
struct WeekSplit {
  workload::ServiceIndex service = 0;
  std::string name;
  /// Mean hourly volume Sat-Sun divided by mean hourly volume Mon-Fri.
  double weekend_to_weekday = 0.0;
  /// Mean volume in the 13-16h window divided by the 2-5h window.
  double day_to_night = 0.0;
  /// Dominant period of the weekly series in hours (expected: 24).
  std::size_t dominant_period_hours = 0;
  /// Autocorrelation at 24h — the daily seasonality strength.
  double daily_seasonality = 0.0;
};

struct WeekSplitReport {
  workload::Direction direction = workload::Direction::kDownlink;
  std::vector<WeekSplit> services;
};

WeekSplitReport analyze_week_split(const TrafficDataset& dataset,
                                   workload::Direction d);

}  // namespace appscope::core
