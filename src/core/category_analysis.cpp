#include "core/category_analysis.hpp"

#include <algorithm>
#include <set>

#include "stats/correlation.hpp"
#include "ts/peaks.hpp"
#include "ts/sbd.hpp"
#include "ts/znorm.hpp"
#include "util/error.hpp"

namespace appscope::core {

double CategoryReport::overall_mean_sbd() const {
  APPSCOPE_REQUIRE(!categories.empty(), "CategoryReport: empty");
  double acc = 0.0;
  for (const auto& c : categories) acc += c.mean_pairwise_sbd;
  return acc / static_cast<double>(categories.size());
}

CategoryReport analyze_category_heterogeneity(const TrafficDataset& dataset,
                                              workload::Direction d) {
  CategoryReport report;
  report.direction = d;

  for (std::size_t cat = 0; cat < workload::kCategoryCount; ++cat) {
    const auto category = static_cast<workload::Category>(cat);
    CategoryHeterogeneity entry;
    entry.category = category;
    entry.name = std::string(workload::category_name(category));
    for (std::size_t s = 0; s < dataset.service_count(); ++s) {
      if (dataset.catalog()[s].category == category) {
        entry.members.push_back(s);
      }
    }
    if (entry.members.size() < 2) continue;

    // Member shapes and the category aggregate.
    std::vector<std::vector<double>> shapes;
    std::vector<double> aggregate(ts::kHoursPerWeek, 0.0);
    for (const auto s : entry.members) {
      const auto& series = dataset.national_series(s, d);
      shapes.push_back(ts::znormalize(std::span<const double>(series)));
      for (std::size_t h = 0; h < series.size(); ++h) aggregate[h] += series[h];
    }

    double sum_sbd = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      for (std::size_t j = i + 1; j < shapes.size(); ++j) {
        const double dist = ts::sbd_distance(shapes[i], shapes[j]);
        sum_sbd += dist;
        entry.max_pairwise_sbd = std::max(entry.max_pairwise_sbd, dist);
        ++pairs;
      }
    }
    entry.mean_pairwise_sbd = sum_sbd / static_cast<double>(pairs);

    double sum_r2 = 0.0;
    for (const auto s : entry.members) {
      sum_r2 += stats::pearson_r2(dataset.national_series(s, d), aggregate);
    }
    entry.mean_member_aggregate_r2 =
        sum_r2 / static_cast<double>(entry.members.size());

    std::set<std::vector<ts::TopicalTime>> signatures;
    for (const auto s : entry.members) {
      const auto det = ts::detect_peaks(dataset.national_series(s, d), {});
      signatures.insert(ts::peak_topical_times(det));
    }
    entry.distinct_signatures = signatures.size();

    report.categories.push_back(std::move(entry));
  }
  return report;
}

}  // namespace appscope::core
