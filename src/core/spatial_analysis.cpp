#include "core/spatial_analysis.hpp"

#include <algorithm>
#include <numeric>

#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace appscope::core {

ConcentrationReport analyze_concentration(const TrafficDataset& dataset,
                                          workload::ServiceIndex service,
                                          workload::Direction d) {
  APPSCOPE_REQUIRE(service < dataset.service_count(),
                   "analyze_concentration: bad service");
  ConcentrationReport report;
  report.service = service;
  report.name = dataset.catalog()[service].name;
  report.direction = d;

  const std::vector<double> totals = dataset.commune_totals(service, d);
  report.cumulative_share = stats::cumulative_share_ranked(totals);
  report.top1_share = stats::top_fraction_share(totals, 0.01);
  report.top10_share = stats::top_fraction_share(totals, 0.10);
  report.gini = stats::gini(totals);

  report.per_user_sample = dataset.per_user_commune_vector(service, d);
  static constexpr std::array<double, 7> kQs = {0.01, 0.10, 0.25, 0.50,
                                                0.75, 0.90, 0.99};
  const std::vector<double> qs =
      stats::quantiles(report.per_user_sample, std::span<const double>(kQs));
  std::copy(qs.begin(), qs.end(), report.per_user_quantiles.begin());
  return report;
}

UsageMapReport analyze_usage_map(const TrafficDataset& dataset,
                                 workload::ServiceIndex service,
                                 workload::Direction d, std::size_t cols,
                                 std::size_t rows) {
  APPSCOPE_REQUIRE(service < dataset.service_count(),
                   "analyze_usage_map: bad service");
  const std::vector<double> per_user = dataset.per_user_commune_vector(service, d);

  UsageMapReport report{service, dataset.catalog()[service].name,
                        geo::map_commune_values(dataset.territory(), per_user,
                                                cols, rows)};

  std::size_t absent = 0;
  stats::RunningStats urban;
  stats::RunningStats rural;
  for (std::size_t c = 0; c < per_user.size(); ++c) {
    if (per_user[c] <= 0.0) ++absent;
    switch (dataset.territory().communes()[c].urbanization) {
      case geo::Urbanization::kUrban:
        urban.add(per_user[c]);
        break;
      case geo::Urbanization::kRural:
        rural.add(per_user[c]);
        break;
      default:
        break;
    }
  }
  report.absent_commune_fraction =
      static_cast<double>(absent) / static_cast<double>(per_user.size());
  report.urban_mean = urban.count() > 0 ? urban.mean() : 0.0;
  report.rural_mean = rural.count() > 0 ? rural.mean() : 0.0;
  return report;
}

SpatialCorrelationReport analyze_spatial_correlation(const TrafficDataset& dataset,
                                                     workload::Direction d) {
  SpatialCorrelationReport report;
  report.direction = d;

  std::vector<std::vector<double>> vectors;
  vectors.reserve(dataset.service_count());
  for (std::size_t s = 0; s < dataset.service_count(); ++s) {
    vectors.push_back(dataset.per_user_commune_vector(s, d));
  }
  report.r2 = stats::pairwise_r2(vectors);
  report.pairwise_values = stats::upper_triangle(report.r2);
  report.mean_r2 = stats::mean(report.pairwise_values);
  report.median_r2 = stats::median(report.pairwise_values);

  const std::size_t n = dataset.service_count();
  report.service_mean_r2.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) acc += report.r2(i, j);
    }
    report.service_mean_r2[i] = acc / static_cast<double>(n - 1);
  }

  std::vector<workload::ServiceIndex> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&report](std::size_t a, std::size_t b) {
              return report.service_mean_r2[a] < report.service_mean_r2[b];
            });
  report.outliers.assign(
      order.begin(),
      order.begin() + static_cast<std::ptrdiff_t>(std::min<std::size_t>(2, n)));
  return report;
}

}  // namespace appscope::core
