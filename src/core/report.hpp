// appscope/core/report.hpp
//
// Markdown rendering of a StudyReport: one call turns the full study into a
// human-readable document with a paper-vs-measured table per figure. Used
// by the paper_report example and to regenerate EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>

#include "core/study.hpp"

namespace appscope::core {

struct ReportOptions {
  /// Title of the generated document.
  std::string title = "appscope study report";
  /// Include the ASCII maps (Fig. 9); large but self-contained.
  bool include_maps = true;
};

/// Renders the study as Markdown to `out`.
void write_markdown_report(const StudyReport& report,
                           const TrafficDataset& dataset, std::ostream& out,
                           const ReportOptions& options = {});

/// Convenience: renders to a string.
std::string markdown_report(const StudyReport& report,
                            const TrafficDataset& dataset,
                            const ReportOptions& options = {});

}  // namespace appscope::core
