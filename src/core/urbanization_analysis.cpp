#include "core/urbanization_analysis.hpp"

#include "stats/correlation.hpp"
#include "stats/regression.hpp"
#include "util/error.hpp"

namespace appscope::core {

double UrbanizationReport::mean_volume_ratio(geo::Urbanization u) const {
  APPSCOPE_REQUIRE(!services.empty(), "UrbanizationReport: empty");
  double acc = 0.0;
  for (const auto& s : services) {
    acc += s.volume_ratio[static_cast<std::size_t>(u)];
  }
  return acc / static_cast<double>(services.size());
}

double UrbanizationReport::mean_temporal_r2(geo::Urbanization u) const {
  APPSCOPE_REQUIRE(!services.empty(), "UrbanizationReport: empty");
  double acc = 0.0;
  for (const auto& s : services) {
    acc += s.temporal_r2[static_cast<std::size_t>(u)];
  }
  return acc / static_cast<double>(services.size());
}

UrbanizationReport analyze_urbanization(const TrafficDataset& dataset,
                                        workload::Direction d) {
  UrbanizationReport report;
  report.direction = d;

  constexpr std::array<geo::Urbanization, geo::kUrbanizationCount> kClasses = {
      geo::Urbanization::kUrban, geo::Urbanization::kSemiUrban,
      geo::Urbanization::kRural, geo::Urbanization::kTgv};

  for (std::size_t s = 0; s < dataset.service_count(); ++s) {
    ServiceUrbanization su;
    su.service = s;
    su.name = dataset.catalog()[s].name;

    std::array<std::vector<double>, geo::kUrbanizationCount> series;
    for (const auto u : kClasses) {
      series[static_cast<std::size_t>(u)] =
          dataset.per_user_urbanization_series(s, u, d);
    }
    const auto& urban = series[static_cast<std::size_t>(geo::Urbanization::kUrban)];

    // Top plot: slope of the through-origin least-squares regression of each
    // class's per-user series against the urban one.
    for (const auto u : kClasses) {
      const auto ui = static_cast<std::size_t>(u);
      if (u == geo::Urbanization::kUrban) {
        su.volume_ratio[ui] = 1.0;
        continue;
      }
      su.volume_ratio[ui] = stats::ols_through_origin(urban, series[ui]).slope;
    }

    // Bottom plot: mean r² between this class's series and the others'.
    for (const auto u : kClasses) {
      const auto ui = static_cast<std::size_t>(u);
      double acc = 0.0;
      std::size_t count = 0;
      for (const auto v : kClasses) {
        if (v == u) continue;
        acc += stats::pearson_r2(series[ui], series[static_cast<std::size_t>(v)]);
        ++count;
      }
      su.temporal_r2[ui] = acc / static_cast<double>(count);
    }
    report.services.push_back(std::move(su));
  }
  return report;
}

}  // namespace appscope::core
