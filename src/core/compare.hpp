// appscope/core/compare.hpp
//
// Dataset-to-dataset comparison: quantifies how closely two datasets over
// the same territory and catalog agree, per service. Used to validate the
// event-level measurement pipeline against the analytic generator and to
// study seed / configuration sensitivity.
#pragma once

#include <string>
#include <vector>

#include "core/dataset.hpp"

namespace appscope::core {

struct ServiceAgreement {
  workload::ServiceIndex service = 0;
  std::string name;
  /// r² between the two nationwide hourly series.
  double temporal_r2 = 0.0;
  /// r² between the two per-commune weekly volume vectors.
  double spatial_r2 = 0.0;
  /// Weekly volume ratio b/a (1 = identical totals).
  double volume_ratio = 0.0;
};

struct DatasetComparison {
  workload::Direction direction = workload::Direction::kDownlink;
  std::vector<ServiceAgreement> services;

  double mean_temporal_r2() const;
  double mean_spatial_r2() const;
  /// Total volume ratio b/a over all services.
  double total_volume_ratio = 0.0;
};

/// Compares datasets a and b. Requires identical commune and service
/// counts (same territory/catalog dimensions).
DatasetComparison compare_datasets(const TrafficDataset& a,
                                   const TrafficDataset& b,
                                   workload::Direction d);

}  // namespace appscope::core
