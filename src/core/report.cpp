#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <set>
#include <sstream>

#include "core/category_analysis.hpp"
#include "core/slicing.hpp"
#include "util/strings.hpp"

namespace appscope::core {

namespace {

using util::format_double;
using util::format_percent;

void paper_vs_measured(std::ostream& out, const std::string& metric,
                       const std::string& paper, const std::string& measured) {
  out << "| " << metric << " | " << paper << " | " << measured << " |\n";
}

void table_header(std::ostream& out) {
  out << "| metric | paper | measured |\n|---|---|---|\n";
}

void render_fig2(std::ostream& out, const StudyReport& r) {
  out << "## Fig. 2 — service ranking (Zipf)\n\n";
  table_header(out);
  const auto& dl = r.ranking[0];
  const auto& ul = r.ranking[1];
  // Negations built via append: gcc 12's -Wrestrict misfires on the inlined
  // operator+(const char*, std::string&&) temporary at -O2.
  std::string dl_exp = "-";
  dl_exp += format_double(dl.top_half_fit.exponent, 2);
  std::string ul_exp = "-";
  ul_exp += format_double(ul.top_half_fit.exponent, 2);
  paper_vs_measured(out, "downlink top-half Zipf exponent", "-1.69", dl_exp);
  paper_vs_measured(out, "uplink top-half Zipf exponent", "-1.55", ul_exp);
  paper_vs_measured(
      out, "rank-1 to rank-500 volume span", "~10 orders of magnitude",
      format_double(std::log10(dl.normalized_volumes.front() /
                               dl.normalized_volumes.back()),
                    1) +
          " orders (downlink)");
  paper_vs_measured(out, "bottom-half cutoff", "breaks below the Zipf head",
                    "actual/extrapolated at rank 500 = " +
                        format_double(dl.tail_cutoff_ratio, 4));
  out << "\n";
}

void render_fig3(std::ostream& out, const StudyReport& r) {
  out << "## Fig. 3 — top services by direction\n\n";
  table_header(out);
  const auto& dl = r.top_services[0];
  const auto& ul = r.top_services[1];
  paper_vs_measured(
      out, "video streaming share of downlink", "~46%",
      format_percent(dl.category_share(workload::Category::kVideoStreaming), 1));
  paper_vs_measured(out, "downlink ranking head", "YouTube, then iTunes",
                    dl.ranking[0].name + ", then " + dl.ranking[1].name);
  paper_vs_measured(out, "uplink top-3", "social networks and messaging",
                    ul.ranking[0].name + ", " + ul.ranking[1].name + ", " +
                        ul.ranking[2].name);
  out << "\n";
}

void render_fig5(std::ostream& out, const StudyReport& r) {
  out << "## Fig. 5 — clustering quality vs k\n\n";
  table_header(out);
  for (std::size_t dir = 0; dir < 2; ++dir) {
    const auto& sweep = r.clustering[dir];
    double sil_max = -1.0;
    for (const auto& row : sweep.rows) {
      sil_max = std::max(sil_max, row.kshape.silhouette);
    }
    const std::string name = dir == 0 ? "downlink" : "uplink";
    paper_vs_measured(out, name + " clear winner k",
                      "none — indices degrade with k",
                      "best DB* k=" + std::to_string(sweep.best_k_by_db_star()) +
                          ", max silhouette " + format_double(sil_max, 2));
  }
  out << "\n";
}

void render_fig6_7(std::ostream& out, const StudyReport& r) {
  out << "## Figs. 6/7 — peak times and intensities\n\n";
  table_header(out);
  std::set<std::vector<ts::TopicalTime>> signatures;
  std::size_t midday = 0;
  for (const auto& sp : r.peaks.services) {
    signatures.insert(sp.topical_times);
    for (const auto t : sp.topical_times) {
      if (t == ts::TopicalTime::kMidday) ++midday;
    }
  }
  paper_vs_measured(out, "distinct topical peak moments", "7",
                    std::to_string(r.peaks.distinct_topical_times()));
  paper_vs_measured(out, "distinct per-service signatures",
                    "very diverse, even within categories",
                    std::to_string(signatures.size()) + " / 20 services");
  paper_vs_measured(out, "services peaking at working midday", "almost all",
                    std::to_string(midday) + " / 20");

  auto max_at = [&r](ts::TopicalTime t) {
    double best = 0.0;
    for (const auto& sp : r.peaks.services) {
      const auto v = sp.intensities[static_cast<std::size_t>(t)];
      if (v) best = std::max(best, *v);
    }
    return best;
  };
  paper_vs_measured(out, "midday max intensity", "~160%",
                    format_percent(max_at(ts::TopicalTime::kMidday), 0));
  paper_vs_measured(out, "morning commute max intensity", "~120%",
                    format_percent(max_at(ts::TopicalTime::kMorningCommute), 0));
  paper_vs_measured(out, "evening max intensity", "~80%",
                    format_percent(max_at(ts::TopicalTime::kEvening), 0));
  out << "\n### Peak-time wheel\n\n| service |";
  for (const auto t : ts::all_topical_times()) {
    out << " " << ts::topical_time_name(t) << " |";
  }
  out << "\n|---|";
  for (std::size_t i = 0; i < ts::kTopicalTimeCount; ++i) out << "---|";
  out << "\n";
  for (const auto& sp : r.peaks.services) {
    out << "| " << sp.name << " |";
    for (const auto t : ts::all_topical_times()) {
      const bool on = std::find(sp.topical_times.begin(), sp.topical_times.end(),
                                t) != sp.topical_times.end();
      out << (on ? " x |" : "   |");
    }
    out << "\n";
  }
  out << "\n";
}

void render_fig8(std::ostream& out, const StudyReport& r) {
  out << "## Fig. 8 — spatial concentration (" << r.concentration.name
      << ")\n\n";
  table_header(out);
  paper_vs_measured(out, "top 1% communes' traffic share", "> 50%",
                    format_percent(r.concentration.top1_share, 1));
  paper_vs_measured(out, "top 10% communes' traffic share", "> 90%",
                    format_percent(r.concentration.top10_share, 1));
  paper_vs_measured(
      out, "per-subscriber weekly volume span", "few KB (median) to tens of MB",
      util::format_bytes(r.concentration.per_user_quantiles[3]) + " (median) to " +
          util::format_bytes(r.concentration.per_user_quantiles[6]) + " (p99)");
  out << "\n";
}

void render_fig9(std::ostream& out, const StudyReport& r,
                 const TrafficDataset& dataset, bool include_maps) {
  out << "## Fig. 9 — usage maps\n\n";
  table_header(out);
  paper_vs_measured(out, r.map_a.name + " communes with zero traffic",
                    "few (pervasive 3G suffices)",
                    format_percent(r.map_a.absent_commune_fraction, 1));
  paper_vs_measured(out, r.map_b.name + " communes with zero traffic",
                    "large rural regions (4G-gated, low adoption)",
                    format_percent(r.map_b.absent_commune_fraction, 1));
  paper_vs_measured(
      out, r.map_b.name + " urban/rural per-user contrast",
      "much stronger than typical services",
      format_double(r.map_b.urban_mean / (r.map_b.rural_mean + 1.0), 1) +
          "x vs " +
          format_double(r.map_a.urban_mean / (r.map_a.rural_mean + 1.0), 1) +
          "x");
  if (include_maps) {
    out << "\n### " << r.map_a.name << " per-subscriber downlink\n\n```\n"
        << r.map_a.usage_map.render_ascii() << "```\n";
    out << "\n### " << r.map_b.name << " per-subscriber downlink\n\n```\n"
        << r.map_b.usage_map.render_ascii() << "```\n";
    out << "\n### 3G/4G coverage\n\n```\n"
        << geo::map_coverage(dataset.territory()).render_ascii(false) << "```\n";
  }
  out << "\n";
}

void render_fig10(std::ostream& out, const StudyReport& r,
                  const TrafficDataset& dataset) {
  out << "## Fig. 10 — spatial correlation between services\n\n";
  table_header(out);
  paper_vs_measured(out, "mean pairwise r² (downlink)", "0.60",
                    format_double(r.correlation[0].mean_r2, 2));
  paper_vs_measured(out, "mean pairwise r² (uplink)", "0.53",
                    format_double(r.correlation[1].mean_r2, 2));
  std::string outliers;
  for (const auto s : r.correlation[0].outliers) {
    if (!outliers.empty()) outliers += ", ";
    outliers += dataset.catalog()[s].name;
  }
  paper_vs_measured(out, "low-correlation outliers", "Netflix and iCloud",
                    outliers);
  out << "\n";
}

void render_fig11(std::ostream& out, const StudyReport& r) {
  out << "## Fig. 11 — urbanization levels\n\n";
  table_header(out);
  const auto& u = r.urbanization;
  paper_vs_measured(out, "semi-urban per-user volume vs urban", "~1x",
                    format_double(u.mean_volume_ratio(geo::Urbanization::kSemiUrban), 2) + "x");
  paper_vs_measured(out, "rural per-user volume vs urban", "~0.5x",
                    format_double(u.mean_volume_ratio(geo::Urbanization::kRural), 2) + "x");
  paper_vs_measured(out, "TGV per-user volume vs urban", ">= 2x",
                    format_double(u.mean_volume_ratio(geo::Urbanization::kTgv), 2) + "x");
  paper_vs_measured(out, "temporal r² across urban/semi/rural", "high",
                    format_double(u.mean_temporal_r2(geo::Urbanization::kRural), 2));
  paper_vs_measured(out, "temporal r² of TGV users", "distinctly lower",
                    format_double(u.mean_temporal_r2(geo::Urbanization::kTgv), 2));
  double adult_tgv = 0.0;
  for (const auto& s : u.services) {
    if (s.name == "Adult") {
      adult_tgv = s.volume_ratio[static_cast<std::size_t>(geo::Urbanization::kTgv)];
    }
  }
  paper_vs_measured(out, "Adult on TGV", "inverted (depressed) trend",
                    format_double(adult_tgv, 2) + "x");
  out << "\n";
}

void render_extensions(std::ostream& out, const TrafficDataset& dataset) {
  out << "## Beyond the figures\n\n";

  const CategoryReport categories = analyze_category_heterogeneity(
      dataset, workload::Direction::kDownlink);
  out << "### Within-category heterogeneity (Sec. 4's key argument)\n\n"
      << "| category | members | mean SBD | member-vs-aggregate r² | "
         "signatures |\n|---|---|---|---|---|\n";
  for (const auto& c : categories.categories) {
    out << "| " << c.name << " | " << c.members.size() << " | "
        << format_double(c.mean_pairwise_sbd, 3) << " | "
        << format_double(c.mean_member_aggregate_r2, 2) << " | "
        << c.distinct_signatures << " |\n";
  }

  const SlicingReport slices =
      analyze_slicing(dataset, workload::Direction::kDownlink);
  out << "\n### Network-slicing economics (the Sec. 1 motivation)\n\n"
      << "- static per-slice capacity (sum of peaks): "
      << util::format_bytes(slices.static_capacity) << "/h\n"
      << "- dynamic hourly reallocation: "
      << util::format_bytes(slices.dynamic_capacity) << "/h\n"
      << "- multiplexing gain from temporal heterogeneity: "
      << format_percent(slices.multiplexing_gain(), 1) << "\n\n";
}

}  // namespace

void write_markdown_report(const StudyReport& report,
                           const TrafficDataset& dataset, std::ostream& out,
                           const ReportOptions& options) {
  out << "# " << options.title << "\n\n";
  out << "Scenario: " << dataset.commune_count() << " communes, "
      << dataset.subscribers().total() << " subscribers, "
      << dataset.service_count() << " services, one synthetic week.\n\n";
  render_fig2(out, report);
  render_fig3(out, report);
  render_fig5(out, report);
  render_fig6_7(out, report);
  render_fig8(out, report);
  render_fig9(out, report, dataset, options.include_maps);
  render_fig10(out, report, dataset);
  render_fig11(out, report);
  render_extensions(out, dataset);
}

std::string markdown_report(const StudyReport& report,
                            const TrafficDataset& dataset,
                            const ReportOptions& options) {
  std::ostringstream out;
  write_markdown_report(report, dataset, out, options);
  return out.str();
}

}  // namespace appscope::core
