// appscope/core/study.hpp
//
// End-to-end driver: runs every analysis of the paper on one dataset and
// bundles the reports. This is the "one call reproduces the study" API used
// by the examples and by EXPERIMENTS.md generation; the per-figure benches
// call the individual analyses directly.
#pragma once

#include "core/category_analysis.hpp"
#include "core/rank_analysis.hpp"
#include "core/slicing.hpp"
#include "core/spatial_analysis.hpp"
#include "core/temporal_analysis.hpp"
#include "core/urbanization_analysis.hpp"

namespace appscope::core {

struct StudyOptions {
  /// Services mapped in Fig. 9 (defaults: Twitter and Netflix).
  std::string map_service_a = "Twitter";
  std::string map_service_b = "Netflix";
  /// Service of the Fig. 8 concentration analysis.
  std::string concentration_service = "Twitter";
  ClusterSweepOptions cluster;
  ts::ZScorePeakOptions peaks;
  /// Worker threads for the parallel stages (clustering, correlation,
  /// bootstrap). 0 keeps the current global pool size (APPSCOPE_THREADS or
  /// hardware concurrency); any other value resizes the global
  /// util::ThreadPool before the analyses run. Results are identical at
  /// every setting — this is a throughput knob only.
  std::size_t threads = 0;
  /// Turn on the util::MetricsRegistry for this run (per-stage timers,
  /// thread-pool utilization, trace spans). Metrics are pure observation:
  /// the report is bitwise identical with metrics on or off. The
  /// APPSCOPE_METRICS environment variable enables collection too; this
  /// flag only ever switches it on, never off.
  bool metrics = false;
  /// When non-empty (and metrics are enabled), run_study writes the
  /// machine-readable metrics document here after the analyses finish.
  std::string metrics_path;
  /// When non-empty (and metrics are enabled), run_study writes the Chrome
  /// trace-event document (schema appscope.trace/1, loadable in
  /// chrome://tracing / Perfetto) here after the analyses finish. Tracing
  /// is pure observation: the report is bitwise identical either way.
  std::string trace_path;
};

struct StudyReport {
  // Fig. 2 / Fig. 3 (both directions).
  std::array<ServiceRankingReport, workload::kDirectionCount> ranking;
  std::array<TopServicesReport, workload::kDirectionCount> top_services;
  // Fig. 5 (both directions).
  std::array<ClusterSweepReport, workload::kDirectionCount> clustering;
  // Figs. 4/6/7 (downlink, as in the paper).
  PeakReport peaks;
  // Fig. 8.
  ConcentrationReport concentration;
  // Fig. 9.
  UsageMapReport map_a;
  UsageMapReport map_b;
  // Fig. 10 (both directions).
  std::array<SpatialCorrelationReport, workload::kDirectionCount> correlation;
  // Fig. 11.
  UrbanizationReport urbanization;
  // Beyond the figures: weekend/weekday dichotomy + daily periodicity,
  // within-category heterogeneity (Sec. 4's argument), and the Sec. 1
  // slicing motivation.
  WeekSplitReport week_split;
  CategoryReport categories;
  SlicingReport slicing;
};

/// Runs the full study. The dataset must use the paper catalog (service
/// names in StudyOptions must resolve).
StudyReport run_study(const TrafficDataset& dataset,
                      const StudyOptions& options = {});

}  // namespace appscope::core
