#include "core/rank_analysis.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace appscope::core {

TopServicesReport analyze_top_services(const TrafficDataset& dataset,
                                       workload::Direction d) {
  TopServicesReport report;
  report.direction = d;

  double total = 0.0;
  for (std::size_t s = 0; s < dataset.service_count(); ++s) {
    total += dataset.national_total(s, d);
  }
  APPSCOPE_REQUIRE(total > 0.0, "analyze_top_services: empty dataset");

  report.ranking.reserve(dataset.service_count());
  for (std::size_t s = 0; s < dataset.service_count(); ++s) {
    RankedService entry;
    entry.service = s;
    entry.name = dataset.catalog()[s].name;
    entry.category = dataset.catalog()[s].category;
    entry.volume = dataset.national_total(s, d);
    entry.share = entry.volume / total;
    report.ranking.push_back(std::move(entry));
  }
  std::sort(report.ranking.begin(), report.ranking.end(),
            [](const RankedService& a, const RankedService& b) {
              return a.volume > b.volume;
            });

  for (const auto& entry : report.ranking) {
    report.category_shares[static_cast<std::size_t>(entry.category)] +=
        entry.share;
  }
  return report;
}

ServiceRankingReport analyze_service_ranking(const TrafficDataset& dataset,
                                             workload::Direction d,
                                             std::size_t total_services) {
  APPSCOPE_REQUIRE(total_services > dataset.service_count(),
                   "analyze_service_ranking: need a non-empty tail");

  ServiceRankingReport report;
  report.direction = d;

  // Head: measured volumes of the studied services.
  std::vector<double> volumes;
  volumes.reserve(total_services);
  for (std::size_t s = 0; s < dataset.service_count(); ++s) {
    volumes.push_back(dataset.national_total(s, d));
  }
  std::sort(volumes.begin(), volumes.end(), std::greater<>());
  APPSCOPE_REQUIRE(volumes.front() > 0.0, "analyze_service_ranking: no traffic");

  // Tail: the >480 low-volume services the probes detect but the paper does
  // not study individually, synthesized from the catalog's tail law.
  const std::vector<double> synthetic = workload::full_service_ranking(
      dataset.catalog(), d, total_services, 0.0);
  // Scale the synthetic tail so it continues the measured head: both
  // rankings share the catalog head, so match at the last head rank.
  const double scale = volumes.back() / synthetic[volumes.size() - 1];
  for (std::size_t r = volumes.size(); r < total_services; ++r) {
    volumes.push_back(synthetic[r] * scale);
  }

  double total = 0.0;
  for (const double v : volumes) total += v;
  report.normalized_volumes = volumes;
  for (double& v : report.normalized_volumes) v /= total;

  report.top_half_fit = stats::fit_zipf_top_half(report.normalized_volumes);
  report.full_fit = stats::fit_zipf(report.normalized_volumes, 1,
                                    report.normalized_volumes.size());
  report.tail_cutoff_ratio =
      stats::tail_cutoff_ratio(report.normalized_volumes, report.top_half_fit);
  return report;
}

}  // namespace appscope::core
