#include "core/compare.hpp"

#include "stats/correlation.hpp"
#include "util/error.hpp"

namespace appscope::core {

double DatasetComparison::mean_temporal_r2() const {
  APPSCOPE_REQUIRE(!services.empty(), "DatasetComparison: empty");
  double acc = 0.0;
  for (const auto& s : services) acc += s.temporal_r2;
  return acc / static_cast<double>(services.size());
}

double DatasetComparison::mean_spatial_r2() const {
  APPSCOPE_REQUIRE(!services.empty(), "DatasetComparison: empty");
  double acc = 0.0;
  for (const auto& s : services) acc += s.spatial_r2;
  return acc / static_cast<double>(services.size());
}

DatasetComparison compare_datasets(const TrafficDataset& a,
                                   const TrafficDataset& b,
                                   workload::Direction d) {
  APPSCOPE_REQUIRE(a.service_count() == b.service_count(),
                   "compare_datasets: service-count mismatch");
  APPSCOPE_REQUIRE(a.commune_count() == b.commune_count(),
                   "compare_datasets: commune-count mismatch");

  DatasetComparison out;
  out.direction = d;
  double total_a = 0.0;
  double total_b = 0.0;
  for (std::size_t s = 0; s < a.service_count(); ++s) {
    ServiceAgreement agreement;
    agreement.service = s;
    agreement.name = a.catalog()[s].name;
    agreement.temporal_r2 =
        stats::pearson_r2(a.national_series(s, d), b.national_series(s, d));
    agreement.spatial_r2 =
        stats::pearson_r2(a.commune_totals(s, d), b.commune_totals(s, d));
    const double va = a.national_total(s, d);
    const double vb = b.national_total(s, d);
    agreement.volume_ratio = va > 0.0 ? vb / va : 0.0;
    total_a += va;
    total_b += vb;
    out.services.push_back(std::move(agreement));
  }
  out.total_volume_ratio = total_a > 0.0 ? total_b / total_a : 0.0;
  return out;
}

}  // namespace appscope::core
