#include "core/study.hpp"

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace appscope::core {

namespace {
workload::ServiceIndex resolve(const TrafficDataset& dataset,
                               const std::string& name) {
  const auto idx = dataset.catalog().find(name);
  APPSCOPE_REQUIRE(idx.has_value(), "run_study: unknown service: " + name);
  return *idx;
}
}  // namespace

StudyReport run_study(const TrafficDataset& dataset, const StudyOptions& options) {
  if (options.threads > 0) {
    util::ThreadPool::set_global_threads(options.threads);
  }
  const auto svc_a = resolve(dataset, options.map_service_a);
  const auto svc_b = resolve(dataset, options.map_service_b);
  const auto svc_conc = resolve(dataset, options.concentration_service);

  StudyReport report{
      .ranking = {analyze_service_ranking(dataset, workload::Direction::kDownlink),
                  analyze_service_ranking(dataset, workload::Direction::kUplink)},
      .top_services =
          {analyze_top_services(dataset, workload::Direction::kDownlink),
           analyze_top_services(dataset, workload::Direction::kUplink)},
      .clustering =
          {cluster_sweep(dataset, workload::Direction::kDownlink, options.cluster),
           cluster_sweep(dataset, workload::Direction::kUplink, options.cluster)},
      .peaks = analyze_peaks(dataset, workload::Direction::kDownlink,
                             options.peaks),
      .concentration = analyze_concentration(dataset, svc_conc,
                                             workload::Direction::kDownlink),
      .map_a = analyze_usage_map(dataset, svc_a, workload::Direction::kDownlink),
      .map_b = analyze_usage_map(dataset, svc_b, workload::Direction::kDownlink),
      .correlation =
          {analyze_spatial_correlation(dataset, workload::Direction::kDownlink),
           analyze_spatial_correlation(dataset, workload::Direction::kUplink)},
      .urbanization =
          analyze_urbanization(dataset, workload::Direction::kDownlink),
      .week_split = analyze_week_split(dataset, workload::Direction::kDownlink),
      .categories = analyze_category_heterogeneity(
          dataset, workload::Direction::kDownlink),
      .slicing = analyze_slicing(dataset, workload::Direction::kDownlink),
  };
  return report;
}

}  // namespace appscope::core
