#include "core/study.hpp"

#include <optional>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace appscope::core {

namespace {
workload::ServiceIndex resolve(const TrafficDataset& dataset,
                               const std::string& name) {
  const auto idx = dataset.catalog().find(name);
  APPSCOPE_REQUIRE(idx.has_value(), "run_study: unknown service: " + name);
  return *idx;
}

/// Runs one analysis stage under a trace span so per-stage wall time shows
/// up in the exported metrics document.
template <typename Fn>
auto staged(const char* name, Fn&& fn) {
  const util::ScopedSpan span(name);
  const util::StageTimer timer(name);
  return fn();
}
}  // namespace

StudyReport run_study(const TrafficDataset& dataset, const StudyOptions& options) {
  if (options.threads > 0) {
    util::ThreadPool::set_global_threads(options.threads);
  }
  if (options.metrics) {
    util::MetricsRegistry::set_enabled(true);
  }
  // Held in an optional so it can be closed before the trace export below;
  // an open span would otherwise be invisible to the critical-path pass.
  std::optional<util::ScopedSpan> span;
  span.emplace("core.run_study");
  util::StageTimer timer("core.run_study");
  const auto svc_a = resolve(dataset, options.map_service_a);
  const auto svc_b = resolve(dataset, options.map_service_b);
  const auto svc_conc = resolve(dataset, options.concentration_service);

  using workload::Direction;
  StudyReport report{
      .ranking = staged("core.stage.ranking",
                        [&] {
                          return std::array<ServiceRankingReport,
                                            workload::kDirectionCount>{
                              analyze_service_ranking(dataset,
                                                      Direction::kDownlink),
                              analyze_service_ranking(dataset,
                                                      Direction::kUplink)};
                        }),
      .top_services =
          staged("core.stage.top_services",
                 [&] {
                   return std::array<TopServicesReport,
                                     workload::kDirectionCount>{
                       analyze_top_services(dataset, Direction::kDownlink),
                       analyze_top_services(dataset, Direction::kUplink)};
                 }),
      .clustering =
          staged("core.stage.clustering",
                 [&] {
                   return std::array<ClusterSweepReport,
                                     workload::kDirectionCount>{
                       cluster_sweep(dataset, Direction::kDownlink,
                                     options.cluster),
                       cluster_sweep(dataset, Direction::kUplink,
                                     options.cluster)};
                 }),
      .peaks = staged("core.stage.peaks",
                      [&] {
                        return analyze_peaks(dataset, Direction::kDownlink,
                                             options.peaks);
                      }),
      .concentration = staged("core.stage.concentration",
                              [&] {
                                return analyze_concentration(
                                    dataset, svc_conc, Direction::kDownlink);
                              }),
      .map_a = staged("core.stage.usage_map",
                      [&] {
                        return analyze_usage_map(dataset, svc_a,
                                                 Direction::kDownlink);
                      }),
      .map_b = staged("core.stage.usage_map",
                      [&] {
                        return analyze_usage_map(dataset, svc_b,
                                                 Direction::kDownlink);
                      }),
      .correlation =
          staged("core.stage.correlation",
                 [&] {
                   return std::array<SpatialCorrelationReport,
                                     workload::kDirectionCount>{
                       analyze_spatial_correlation(dataset,
                                                   Direction::kDownlink),
                       analyze_spatial_correlation(dataset,
                                                   Direction::kUplink)};
                 }),
      .urbanization =
          staged("core.stage.urbanization",
                 [&] {
                   return analyze_urbanization(dataset, Direction::kDownlink);
                 }),
      .week_split =
          staged("core.stage.week_split",
                 [&] {
                   return analyze_week_split(dataset, Direction::kDownlink);
                 }),
      .categories = staged("core.stage.categories",
                           [&] {
                             return analyze_category_heterogeneity(
                                 dataset, Direction::kDownlink);
                           }),
      .slicing = staged("core.stage.slicing",
                        [&] {
                          return analyze_slicing(dataset,
                                                 Direction::kDownlink);
                        }),
  };

  if (util::MetricsRegistry::enabled() &&
      (!options.metrics_path.empty() || !options.trace_path.empty())) {
    timer.stop();   // close the study-wide timer so it appears in the export
    span.reset();   // close the study-wide span so it appears in the trace
    if (!options.metrics_path.empty()) {
      util::write_metrics_json(options.metrics_path);
    }
    if (!options.trace_path.empty()) {
      util::write_trace_json(options.trace_path);
    }
  }
  return report;
}

}  // namespace appscope::core
