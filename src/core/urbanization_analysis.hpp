// appscope/core/urbanization_analysis.hpp
//
// Urbanization-level analysis (paper Fig. 11):
//  - top: for each service, the slope of the least-squares regression of the
//    per-subscriber time series of semi-urban / rural / TGV users against
//    urban users — "how much" each population consumes;
//  - bottom: the mean coefficient of determination between the time series
//    of the same service across urbanization levels — "when" they consume.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/dataset.hpp"

namespace appscope::core {

struct ServiceUrbanization {
  workload::ServiceIndex service = 0;
  std::string name;
  /// Regression slope of each class's per-user series vs the urban one
  /// (urban entry is 1 by definition). Indexed by geo::Urbanization.
  std::array<double, geo::kUrbanizationCount> volume_ratio{};
  /// Mean r² between this class's series and the other classes' series.
  std::array<double, geo::kUrbanizationCount> temporal_r2{};
};

struct UrbanizationReport {
  workload::Direction direction = workload::Direction::kDownlink;
  std::vector<ServiceUrbanization> services;

  /// Cross-service mean of a class's volume ratio (paper: semi ≈ 1,
  /// rural ≈ 0.5, TGV ≥ 2).
  double mean_volume_ratio(geo::Urbanization u) const;
  /// Cross-service mean of a class's temporal r².
  double mean_temporal_r2(geo::Urbanization u) const;
};

UrbanizationReport analyze_urbanization(const TrafficDataset& dataset,
                                        workload::Direction d);

}  // namespace appscope::core
