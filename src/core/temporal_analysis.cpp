#include "core/temporal_analysis.hpp"

#include <limits>

#include "la/vector_ops.hpp"
#include "ts/autocorrelation.hpp"
#include "ts/kmeans.hpp"
#include "ts/sbd.hpp"
#include "ts/series_batch.hpp"
#include "ts/znorm.hpp"
#include "util/error.hpp"

namespace appscope::core {

namespace {
std::vector<std::vector<double>> znormalized_national_series(
    const TrafficDataset& dataset, workload::Direction d) {
  std::vector<std::vector<double>> series;
  series.reserve(dataset.service_count());
  for (std::size_t s = 0; s < dataset.service_count(); ++s) {
    series.push_back(ts::znormalize(
        std::span<const double>(dataset.national_series(s, d))));
  }
  return series;
}
}  // namespace

std::size_t ClusterSweepReport::best_k_by_db_star() const {
  APPSCOPE_REQUIRE(!rows.empty(), "ClusterSweepReport: empty sweep");
  std::size_t best = rows.front().k;
  double best_value = std::numeric_limits<double>::infinity();
  for (const auto& row : rows) {
    if (row.kshape.davies_bouldin_star < best_value) {
      best_value = row.kshape.davies_bouldin_star;
      best = row.k;
    }
  }
  return best;
}

std::size_t ClusterSweepReport::best_k_by_silhouette() const {
  APPSCOPE_REQUIRE(!rows.empty(), "ClusterSweepReport: empty sweep");
  std::size_t best = rows.front().k;
  double best_value = -std::numeric_limits<double>::infinity();
  for (const auto& row : rows) {
    if (row.kshape.silhouette > best_value) {
      best_value = row.kshape.silhouette;
      best = row.k;
    }
  }
  return best;
}

ClusterSweepReport cluster_sweep(const TrafficDataset& dataset,
                                 workload::Direction d,
                                 const ClusterSweepOptions& opts) {
  APPSCOPE_REQUIRE(opts.k_min >= 2, "cluster_sweep: k_min must be >= 2");
  APPSCOPE_REQUIRE(opts.k_max >= opts.k_min, "cluster_sweep: k_max < k_min");
  APPSCOPE_REQUIRE(opts.k_max < dataset.service_count(),
                   "cluster_sweep: k_max must be below the service count");

  const auto series = znormalized_national_series(dataset, d);

  // Spectrum cache + pairwise SBD matrix built once per direction and
  // reused across every k in the sweep (Dunn/silhouette only read point
  // pairs; DB/DB* need per-k centroid distances and keep the functor).
  const ts::SeriesBatch batch(series);
  const ts::DistanceMatrix sbd_pairwise = ts::sbd_distance_matrix(batch);

  const ts::DistanceFn sbd_dist = [](std::span<const double> a,
                                     std::span<const double> b) {
    return ts::sbd_distance(a, b);
  };
  const ts::DistanceFn euclidean = [](std::span<const double> a,
                                      std::span<const double> b) {
    return la::distance(a, b);
  };

  ClusterSweepReport report;
  report.direction = d;
  for (std::size_t k = opts.k_min; k <= opts.k_max; ++k) {
    ClusterQualityRow row;
    row.k = k;

    ts::KShapeOptions kopts;
    kopts.k = k;
    kopts.seed = opts.seed;
    const ts::KShapeResult kshape = ts::kshape(series, kopts);
    row.kshape = ts::evaluate_quality(
        series, ts::ClusteringView{kshape.assignments, kshape.centroids},
        sbd_dist, sbd_pairwise);

    if (opts.include_kmeans_baseline) {
      ts::KMeansOptions mopts;
      mopts.k = k;
      mopts.seed = opts.seed;
      const ts::KMeansResult kmeans = ts::kmeans(series, mopts);
      row.kmeans = ts::evaluate_quality(
          series, ts::ClusteringView{kmeans.assignments, kmeans.centroids},
          euclidean);
    }
    report.rows.push_back(std::move(row));
  }
  return report;
}

std::size_t PeakReport::distinct_topical_times() const {
  std::array<bool, ts::kTopicalTimeCount> seen{};
  for (const auto& s : services) {
    for (const auto t : s.topical_times) seen[static_cast<std::size_t>(t)] = true;
  }
  std::size_t count = 0;
  for (const bool b : seen) count += b ? 1 : 0;
  return count;
}

PeakReport analyze_peaks(const TrafficDataset& dataset, workload::Direction d,
                         const ts::ZScorePeakOptions& opts) {
  PeakReport report;
  report.direction = d;
  report.options = opts;
  report.services.reserve(dataset.service_count());

  for (std::size_t s = 0; s < dataset.service_count(); ++s) {
    const auto& series = dataset.national_series(s, d);
    ServicePeaks sp;
    sp.service = s;
    sp.name = dataset.catalog()[s].name;
    sp.detection = ts::detect_peaks(series, opts);
    sp.topical_times = ts::peak_topical_times(sp.detection);
    sp.intensities = ts::topical_peak_intensities(series, sp.detection);
    for (const ts::PeakInterval& interval : sp.detection.intervals) {
      const std::size_t apex = ts::interval_apex(sp.detection, interval);
      if (apex < ts::kHoursPerWeek &&
          !ts::classify_topical(ts::week_hour(apex))) {
        ++sp.unmatched_fronts;
      }
    }
    report.services.push_back(std::move(sp));
  }
  return report;
}

WeekSplitReport analyze_week_split(const TrafficDataset& dataset,
                                   workload::Direction d) {
  WeekSplitReport report;
  report.direction = d;
  report.services.reserve(dataset.service_count());

  for (std::size_t s = 0; s < dataset.service_count(); ++s) {
    const auto& series = dataset.national_series(s, d);
    WeekSplit ws;
    ws.service = s;
    ws.name = dataset.catalog()[s].name;

    double weekend = 0.0;
    double weekday = 0.0;
    double day = 0.0;
    double night = 0.0;
    std::size_t day_n = 0;
    std::size_t night_n = 0;
    for (std::size_t h = 0; h < series.size(); ++h) {
      const ts::WeekHour wh = ts::week_hour(h);
      (wh.is_weekend() ? weekend : weekday) += series[h];
      const std::size_t hod = wh.hour_of_day();
      if (hod >= 13 && hod < 16) {
        day += series[h];
        ++day_n;
      } else if (hod >= 2 && hod < 5) {
        night += series[h];
        ++night_n;
      }
    }
    const double weekend_mean = weekend / 48.0;
    const double weekday_mean = weekday / 120.0;
    APPSCOPE_REQUIRE(weekday_mean > 0.0, "analyze_week_split: empty weekdays");
    ws.weekend_to_weekday = weekend_mean / weekday_mean;
    APPSCOPE_REQUIRE(night_n > 0 && night > 0.0,
                     "analyze_week_split: empty night window");
    ws.day_to_night = (day / static_cast<double>(day_n)) /
                      (night / static_cast<double>(night_n));
    ws.dominant_period_hours = ts::dominant_period(series, 12, 84);
    ws.daily_seasonality = ts::seasonality_strength(series, 24);
    report.services.push_back(std::move(ws));
  }
  return report;
}

}  // namespace appscope::core
