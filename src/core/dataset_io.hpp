// appscope/core/dataset_io.hpp
//
// CSV persistence for TrafficDataset aggregates: export the national hourly
// series, per-commune weekly totals and per-urbanization-class series to
// plain CSV files (for external plotting/pandas), and re-import the
// commune-totals table for cross-run comparisons.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/dataset.hpp"

namespace appscope::core {

/// Writes one row per (service, direction, hour) with the national volume.
/// Columns: service,direction,hour,bytes.
void write_national_series_csv(const TrafficDataset& dataset, std::ostream& out);

/// Writes one row per (service, direction, commune) with the weekly volume
/// and the per-subscriber volume.
/// Columns: service,direction,commune,urbanization,bytes,bytes_per_user.
void write_commune_totals_csv(const TrafficDataset& dataset, std::ostream& out);

/// Writes one row per (service, direction, urbanization class, hour).
/// Columns: service,direction,class,hour,bytes.
void write_urbanization_series_csv(const TrafficDataset& dataset,
                                   std::ostream& out);

/// Writes all three tables under `directory` as national_series.csv,
/// commune_totals.csv and urbanization_series.csv; creates the directory.
/// Returns the file paths written. Throws InputError on I/O failure.
std::vector<std::string> export_dataset_csv(const TrafficDataset& dataset,
                                            const std::string& directory);

/// One parsed row of a commune-totals CSV.
struct CommuneTotalsRow {
  std::string service;
  workload::Direction direction = workload::Direction::kDownlink;
  geo::CommuneId commune = 0;
  std::string urbanization;
  double bytes = 0.0;
  double bytes_per_user = 0.0;
};

/// Parses a commune-totals document produced by write_commune_totals_csv.
/// Throws InputError on malformed content.
std::vector<CommuneTotalsRow> read_commune_totals_csv(std::string_view text);

/// Loads the dataset snapshot at `path` if the file exists, otherwise
/// generates the dataset from `config` and saves it there for next time.
/// An existing snapshot whose embedded config does not match `config`
/// throws util::InputError instead of silently regenerating — a stale
/// snapshot path almost always means a mistyped flag, not intent.
TrafficDataset load_or_generate_snapshot(const synth::ScenarioConfig& config,
                                         const std::string& path);

/// Most recent complete snapshot in a directory the appscope_serve daemon
/// seals epochs into: `latest.snapshot` when present, otherwise the
/// epoch_<index>.snapshot with the highest index, otherwise "". Only
/// regular files match, so region-keyed publish dirs nested underneath
/// (`<root>/<region>/epoch_*.snapshot`) never cross-match.
/// (Forwards to io::find_latest_snapshot, where the resolution lives so the
/// query layer can share it.)
std::string find_latest_snapshot(const std::string& directory);

/// Resolution restricted to the region-keyed subdirectory
/// `<directory>/<subdir>`. `subdir` must be a single path component;
/// anything else (separators, "..") throws util::InputError.
std::string find_latest_snapshot(const std::string& directory,
                                 const std::string& subdir);

/// Loads the most recent sealed epoch from a daemon snapshot directory.
/// Retries (bounded) when the publisher atomically replaces the file
/// between path resolution and open/validate, so readers racing the sealer
/// never see a spurious error. Throws util::InputError when the directory
/// holds no snapshot or the snapshot is genuinely corrupt.
TrafficDataset load_epoch_snapshot(const std::string& directory);

namespace detail {
/// Test hook invoked between resolving the snapshot path and loading it,
/// with the 0-based attempt index — lets a regression test swap the file
/// mid-load to exercise the retry. Pass nullptr to clear. Not thread-safe;
/// tests install/remove it around single-threaded calls.
void set_epoch_load_test_hook(std::function<void(int)> hook);
}  // namespace detail

}  // namespace appscope::core
