// appscope/core/category_analysis.hpp
//
// Category-level vs service-level heterogeneity. Most prior work studies
// broad service categories (video, chat, ...); the paper's headline point
// is that "such broad categories hide the peculiarities of each service".
// This analysis quantifies it: within every category, how far apart are the
// members' temporal shapes (SBD), and how much of a member's dynamics does
// the category aggregate actually explain?
#pragma once

#include <string>
#include <vector>

#include "core/dataset.hpp"

namespace appscope::core {

struct CategoryHeterogeneity {
  workload::Category category = workload::Category::kOther;
  std::string name;
  std::vector<workload::ServiceIndex> members;
  /// Mean pairwise SBD between the members' z-normalized national series
  /// (0 = identical shapes, values ≳ 0.1 are clearly distinct dynamics).
  double mean_pairwise_sbd = 0.0;
  /// Largest pairwise SBD within the category.
  double max_pairwise_sbd = 0.0;
  /// Mean r² between each member's series and the category aggregate —
  /// high values would justify category-level modeling; the paper predicts
  /// they leave substantial per-service dynamics unexplained.
  double mean_member_aggregate_r2 = 0.0;
  /// Number of distinct topical-time signatures among the members.
  std::size_t distinct_signatures = 0;
};

struct CategoryReport {
  workload::Direction direction = workload::Direction::kDownlink;
  /// Categories with at least two member services.
  std::vector<CategoryHeterogeneity> categories;

  /// Mean over categories of mean_pairwise_sbd.
  double overall_mean_sbd() const;
};

CategoryReport analyze_category_heterogeneity(const TrafficDataset& dataset,
                                              workload::Direction d);

}  // namespace appscope::core
