#include "query/plan.hpp"

#include <string>

#include "geo/commune.hpp"
#include "util/error.hpp"

namespace appscope::query {

namespace {

[[noreturn]] void reject(const std::string& what) {
  throw util::InputError("query: " + what);
}

}  // namespace

QueryPlan plan_slice(const io::SnapshotHeader& header, const Slice& slice) {
  QueryPlan plan;
  plan.slice = slice;
  canonicalize(plan.slice);
  const Slice& q = plan.slice;

  const std::size_t services = header.services;
  const std::size_t communes = header.communes;
  const std::size_t hours = header.hours;

  // --- Validate the aggregate shape -------------------------------------
  if (q.op == Op::kTopK) {
    if (q.group_by == GroupBy::kNone) {
      reject("op=topk needs a group-by (the k largest of *what*)");
    }
    if (q.k == 0) reject("op=topk needs k >= 1");
  }
  if (q.group_by == GroupBy::kCommune && q.source != Source::kCommuneTotals) {
    reject("group-by=commune needs source=communes");
  }
  if (q.group_by == GroupBy::kHour && q.source == Source::kCommuneTotals) {
    reject("group-by=hour needs an hourly source (national or urbanization)");
  }
  if ((q.group_by == GroupBy::kCommune || q.group_by == GroupBy::kHour) &&
      q.op == Op::kMax) {
    // Per-commune / per-hour maxima would need an elementwise-max kernel;
    // the sum-family ops cover the paper's queries.
    reject("op=max supports group-by=service or no grouping only");
  }

  // --- Service predicate -> rows ----------------------------------------
  for (const std::uint32_t s : q.services) {
    if (s >= services) {
      reject("service id " + std::to_string(s) + " out of range (snapshot has " +
             std::to_string(services) + ")");
    }
  }
  std::vector<std::uint32_t> row_services = q.services;
  if (row_services.empty()) {
    row_services.resize(services);
    for (std::size_t s = 0; s < services; ++s) {
      row_services[s] = static_cast<std::uint32_t>(s);
    }
  }

  // --- Hour / commune / class predicates -> window + mask ----------------
  const bool hourly = q.source != Source::kCommuneTotals;
  if (hourly) {
    const std::uint32_t end =
        q.hour_end == 0 ? static_cast<std::uint32_t>(hours) : q.hour_end;
    if (q.hour_begin >= end || end > hours) {
      reject("hour range [" + std::to_string(q.hour_begin) + ", " +
             std::to_string(end) + ") invalid for a " + std::to_string(hours) +
             "-hour snapshot");
    }
    if (!q.communes.empty()) {
      reject("commune predicate needs source=communes");
    }
    plan.row_len = hours;
    plan.col_begin = q.hour_begin;
    plan.col_end = end;
  } else {
    if (q.hour_begin != 0 || q.hour_end != 0) {
      reject("hour range does not apply to source=communes (weekly totals)");
    }
    plan.row_len = communes;
    plan.col_begin = 0;
    plan.col_end = communes;
    if (!q.communes.empty()) {
      plan.mask.assign(communes, 0);
      for (const std::uint32_t c : q.communes) {
        if (c >= communes) {
          reject("commune id " + std::to_string(c) +
                 " out of range (snapshot has " + std::to_string(communes) +
                 ")");
        }
        plan.mask[c] = 1;
      }
    }
  }
  plan.selected_per_row =
      plan.mask.empty() ? plan.col_end - plan.col_begin : q.communes.size();

  // --- Source -> section + row offsets ----------------------------------
  switch (q.source) {
    case Source::kNational: {
      if (q.urbanization >= 0) {
        reject("urbanization class needs source=urbanization");
      }
      plan.section = io::SectionId::kNationalSeries;
      const std::size_t d = static_cast<std::size_t>(q.direction);
      plan.rows.reserve(row_services.size());
      for (const std::uint32_t s : row_services) {
        plan.rows.push_back({s, 0, (s * 2 + d) * hours});
      }
      break;
    }
    case Source::kCommuneTotals: {
      if (q.urbanization >= 0) {
        reject("urbanization class needs source=urbanization");
      }
      plan.section = io::SectionId::kCommuneTotals;
      const std::size_t d = static_cast<std::size_t>(q.direction);
      plan.rows.reserve(row_services.size());
      for (const std::uint32_t s : row_services) {
        plan.rows.push_back({s, 0, d * services * communes + s * communes});
      }
      break;
    }
    case Source::kUrbanization: {
      if (q.urbanization >= static_cast<int>(geo::kUrbanizationCount)) {
        reject("urbanization class " + std::to_string(q.urbanization) +
               " out of range (0.." +
               std::to_string(geo::kUrbanizationCount - 1) + ")");
      }
      plan.section = io::SectionId::kUrbanizationSeries;
      const std::size_t d = static_cast<std::size_t>(q.direction);
      for (const std::uint32_t s : row_services) {
        for (std::size_t u = 0; u < geo::kUrbanizationCount; ++u) {
          if (q.urbanization >= 0 &&
              u != static_cast<std::size_t>(q.urbanization)) {
            continue;
          }
          plan.rows.push_back(
              {s, static_cast<std::uint32_t>(u),
               ((s * geo::kUrbanizationCount + u) * 2 + d) * hours});
        }
      }
      break;
    }
  }

  plan.bytes_touched = static_cast<std::uint64_t>(plan.rows.size()) *
                       (plan.col_end - plan.col_begin) * sizeof(double);
  return plan;
}

}  // namespace appscope::query
