// appscope/query/cache.hpp
//
// Bounded LRU result cache keyed by (snapshot fingerprint, canonical query)
// strings. Entries from superseded snapshots age out naturally — their keys
// stop being asked for and LRU evicts them. Thread-safe; counts hits and
// misses both locally and under the query.cache.* metrics.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "query/result.hpp"

namespace appscope::query {

class ResultCache {
 public:
  /// A capacity of 0 disables caching (every lookup is a miss, nothing is
  /// stored) — benchmarks use it to measure the raw scan.
  explicit ResultCache(std::size_t capacity);

  /// Returns the cached result and bumps it to most-recently-used.
  std::optional<Result> get(const std::string& key);

  /// Inserts (or refreshes) a result, evicting the least-recently-used
  /// entry when full.
  void put(const std::string& key, const Result& result);

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  struct Entry {
    std::string key;
    Result result;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace appscope::query
