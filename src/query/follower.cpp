#include "query/follower.hpp"

#include <chrono>
#include <filesystem>
#include <system_error>
#include <utility>

#include "io/snapshot.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace appscope::query {

Follower::Follower(std::string directory) : directory_(std::move(directory)) {}

Follower::Published Follower::stat_published(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  Published p;
  p.path = path;
  p.size = static_cast<std::uint64_t>(fs::file_size(path, ec));
  if (ec) throw util::InputError("query: cannot stat snapshot " + path);
  const auto mtime = fs::last_write_time(path, ec);
  if (ec) throw util::InputError("query: cannot stat snapshot " + path);
  p.mtime_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   mtime.time_since_epoch())
                   .count();
  return p;
}

std::shared_ptr<const SnapshotView> Follower::refresh() {
  std::lock_guard<std::mutex> lock(mu_);
  // Bounded retry: the sealer can republish latest.snapshot between our
  // resolve and open, or between stat and open — each retry re-resolves,
  // and every published file is complete (write-to-temp + atomic rename),
  // so persistent failure means real corruption.
  constexpr int kAttempts = 3;
  for (int attempt = 0;; ++attempt) {
    const std::string path = io::find_latest_snapshot(directory_);
    if (path.empty()) {
      throw util::InputError("query: no snapshot in " + directory_);
    }
    try {
      const Published now = stat_published(path);
      if (view_ != nullptr && now == loaded_) return view_;
      auto next = std::make_shared<const SnapshotView>(path);
      view_ = std::move(next);
      loaded_ = now;
      ++reloads_;
      if (util::MetricsRegistry::enabled()) {
        util::MetricsRegistry::global().add("query.follower.reloads");
      }
      return view_;
    } catch (const util::InputError&) {
      if (attempt + 1 >= kAttempts) throw;
    }
  }
}

std::shared_ptr<const SnapshotView> Follower::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_;
}

std::uint64_t Follower::reloads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reloads_;
}

}  // namespace appscope::query
