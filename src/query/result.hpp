// appscope/query/result.hpp
//
// The answer to one Slice. Values are plain doubles produced by the
// dispatched scan kernels under the striped-reduction contract, so a result
// is bitwise identical across SIMD dispatches and thread counts.
#pragma once

#include <cstdint>
#include <vector>

namespace appscope::query {

/// One per-group aggregate (service id, commune id or absolute hour,
/// depending on the slice's group_by).
struct GroupValue {
  std::uint32_t key = 0;
  double value = 0.0;
};

struct Result {
  /// The overall aggregate over every selected cell.
  double value = 0.0;
  /// Selected cells aggregated (rows × selected elements per row).
  std::uint64_t cells = 0;
  /// Per-group aggregates when the slice groups; kTopK keeps the k largest
  /// (ties broken toward the smaller key).
  std::vector<GroupValue> groups;
  /// Payload bytes the scan read (0 on a cache hit).
  std::uint64_t bytes_scanned = 0;
  /// True when served from the result cache without scanning.
  bool from_cache = false;
};

}  // namespace appscope::query
