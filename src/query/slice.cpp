#include "query/slice.hpp"

#include <algorithm>

#include "workload/service.hpp"

namespace appscope::query {

void canonicalize(Slice& slice) {
  std::sort(slice.services.begin(), slice.services.end());
  slice.services.erase(
      std::unique(slice.services.begin(), slice.services.end()),
      slice.services.end());
  std::sort(slice.communes.begin(), slice.communes.end());
  slice.communes.erase(
      std::unique(slice.communes.begin(), slice.communes.end()),
      slice.communes.end());
}

namespace {

void append_set(std::string& out, const char* tag,
                const std::vector<std::uint32_t>& ids) {
  out += tag;
  out += '=';
  if (ids.empty()) {
    out += '*';
    return;
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(ids[i]);
  }
}

}  // namespace

std::string canonical_query(const Slice& slice) {
  Slice c = slice;
  canonicalize(c);
  std::string out;
  out += source_name(c.source);
  out += ' ';
  out += workload::direction_name(c.direction);
  out += " hours=";
  out += std::to_string(c.hour_begin);
  out += ':';
  out += std::to_string(c.hour_end);
  out += ' ';
  append_set(out, "services", c.services);
  out += ' ';
  append_set(out, "communes", c.communes);
  out += " class=";
  out += c.urbanization < 0 ? "*" : std::to_string(c.urbanization);
  out += " op=";
  out += op_name(c.op);
  if (c.op == Op::kTopK) {
    out += ':';
    out += std::to_string(c.k);
  }
  out += " by=";
  out += group_by_name(c.group_by);
  return out;
}

const char* source_name(Source s) noexcept {
  switch (s) {
    case Source::kNational:
      return "national";
    case Source::kCommuneTotals:
      return "communes";
    case Source::kUrbanization:
      return "urbanization";
  }
  return "?";
}

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kSum:
      return "sum";
    case Op::kMax:
      return "max";
    case Op::kMean:
      return "mean";
    case Op::kTopK:
      return "topk";
  }
  return "?";
}

const char* group_by_name(GroupBy g) noexcept {
  switch (g) {
    case GroupBy::kNone:
      return "none";
    case GroupBy::kService:
      return "service";
    case GroupBy::kCommune:
      return "commune";
    case GroupBy::kHour:
      return "hour";
  }
  return "?";
}

}  // namespace appscope::query
