// appscope/query/plan.hpp
//
// Predicate pushdown: plan_slice() resolves a Slice against the snapshot
// *header only* — every predicate (hour range, service set, commune set,
// urbanization class, direction) becomes row element-offsets, a contiguous
// within-row window and an optional selection mask before any payload byte
// is touched. The executor then scans exactly plan.bytes_touched bytes of
// the one section the plan names; with a lazy reader nothing else is even
// mapped.
#pragma once

#include <cstdint>
#include <vector>

#include "io/format.hpp"
#include "query/slice.hpp"

namespace appscope::query {

/// One row the scan will read.
struct RowRef {
  /// Owning service id.
  std::uint32_t service = 0;
  /// Urbanization class for the urbanization source (0 otherwise).
  std::uint32_t cls = 0;
  /// Element offset of the row start inside the section column.
  std::size_t elem_offset = 0;
};

struct QueryPlan {
  /// The canonicalized slice this plan answers.
  Slice slice;
  /// The only section the scan touches.
  io::SectionId section = io::SectionId::kNationalSeries;
  /// Rows to scan, in ascending (service, class) order — the deterministic
  /// combine order of every aggregate.
  std::vector<RowRef> rows;
  /// Full row length in the column (hours, or communes).
  std::size_t row_len = 0;
  /// Within-row scan window [col_begin, col_end).
  std::size_t col_begin = 0;
  std::size_t col_end = 0;
  /// Selection mask over the window (commune sets); empty = whole window.
  std::vector<std::uint8_t> mask;
  /// Selected elements per row (mask popcount, or the window width).
  std::size_t selected_per_row = 0;
  /// Payload bytes the scan will read — the pushdown result.
  std::uint64_t bytes_touched = 0;
};

/// Resolves `slice` against `header`. Throws util::InputError when a
/// predicate is out of range for the snapshot's dimensions or the op /
/// group-by combination is not answerable (see the rules in DESIGN.md §4i).
QueryPlan plan_slice(const io::SnapshotHeader& header, const Slice& slice);

}  // namespace appscope::query
