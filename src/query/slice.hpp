// appscope/query/slice.hpp
//
// The query model: a Slice describes one time×space×service aggregate over
// a snapshot — which cube to read (source), the direction, the predicates
// (hour range, service set, commune set, urbanization class) and the
// aggregate to compute (op + optional grouping). canonical_query() renders
// a canonicalized slice to a stable string: the cache-key component, the
// CLI echo format, and the form two processes can compare for equality.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/service.hpp"

namespace appscope::query {

/// Which aggregate cube the slice reads.
enum class Source : std::uint8_t {
  kNational,       // [service][direction][hour]
  kCommuneTotals,  // [direction][service][commune]
  kUrbanization,   // [service][class][direction][hour]
};

/// The aggregate computed over the selected cells.
enum class Op : std::uint8_t {
  kSum,
  kMax,
  kMean,
  kTopK,  // per-group sums, largest k groups (requires a group_by)
};

/// Secondary key the aggregate is broken down by.
enum class GroupBy : std::uint8_t {
  kNone,
  kService,
  kCommune,  // commune-totals source only
  kHour,     // hourly sources only
};

struct Slice {
  Source source = Source::kNational;
  workload::Direction direction = workload::Direction::kDownlink;
  /// Hour window [hour_begin, hour_end) for the hourly sources; ignored for
  /// commune totals (which hold weekly sums).
  std::uint32_t hour_begin = 0;
  std::uint32_t hour_end = 0;  // 0 = "to the end of the week"
  /// Service ids to include; empty = all services.
  std::vector<std::uint32_t> services;
  /// Commune ids to include (commune-totals source); empty = all.
  std::vector<std::uint32_t> communes;
  /// Urbanization class for the urbanization source: 0..3, or -1 = all.
  int urbanization = -1;
  Op op = Op::kSum;
  /// Group count kept by kTopK.
  std::uint32_t k = 5;
  GroupBy group_by = GroupBy::kNone;
};

/// Sorts and dedupes the id sets — the canonical predicate form the planner
/// and the cache key rely on.
void canonicalize(Slice& slice);

/// Stable textual form of a slice (canonicalizes a copy first).
std::string canonical_query(const Slice& slice);

const char* source_name(Source s) noexcept;
const char* op_name(Op op) noexcept;
const char* group_by_name(GroupBy g) noexcept;

}  // namespace appscope::query
