// appscope/query/engine.hpp
//
// Executes Slices against a SnapshotView: plan (predicate pushdown, header
// only) -> cache probe -> parallel SIMD scan of exactly the planned bytes.
//
// Determinism contract: a result is bitwise identical across SIMD
// dispatches and thread counts.
//   - Row partials use the striped-reduction kernels (sum_stripes /
//     masked_sum_stripes) or the order-independent max kernels, so each
//     partial is dispatch-invariant.
//   - Partials combine sequentially in plan-row order (ascending service,
//     class) regardless of which pool thread produced them.
//   - Buffered aggregations (group-by hour / commune) accumulate in fixed
//     row chunks whose boundaries depend only on the row count, and merge
//     chunk partials strictly in chunk order — the same IEEE addition tree
//     at every thread count.
// Engines and views are safe to share across reader threads.
#pragma once

#include <cstddef>

#include "query/cache.hpp"
#include "query/plan.hpp"
#include "query/result.hpp"
#include "query/slice.hpp"
#include "query/snapshot_view.hpp"

namespace appscope::query {

class Engine {
 public:
  struct Options {
    /// Result-cache entries; 0 disables caching (benchmarks measuring the
    /// raw scan use 0).
    std::size_t cache_capacity = 128;
  };

  Engine();
  explicit Engine(Options options);

  /// Plans, probes the cache and (on a miss) scans. Throws
  /// util::InputError for unanswerable slices or a corrupt touched section.
  Result run(const SnapshotView& view, const Slice& slice);

  const ResultCache& cache() const noexcept { return cache_; }

 private:
  ResultCache cache_;
};

/// Pure plan execution: scans the planned section and aggregates. No cache,
/// no canonicalization — the deterministic core Engine::run wraps.
Result execute_plan(const SnapshotView& view, const QueryPlan& plan);

}  // namespace appscope::query
