#include "query/cache.hpp"

#include "util/metrics.hpp"

namespace appscope::query {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {}

std::optional<Result> ResultCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    if (util::MetricsRegistry::enabled()) {
      util::MetricsRegistry::global().add("query.cache.misses");
    }
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  if (util::MetricsRegistry::enabled()) {
    util::MetricsRegistry::global().add("query.cache.hits");
  }
  Result out = it->second->result;
  out.from_cache = true;
  out.bytes_scanned = 0;
  return out;
}

void ResultCache::put(const std::string& key, const Result& result) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->result = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front({key, result});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    if (util::MetricsRegistry::enabled()) {
      util::MetricsRegistry::global().add("query.cache.evictions");
    }
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace appscope::query
