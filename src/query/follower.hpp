// appscope/query/follower.hpp
//
// Refresh-on-publish: tracks the appscope_serve daemon's publish point
// (`latest.snapshot`, atomically renamed into place at each epoch seal) and
// hands out a shared SnapshotView of the newest sealed snapshot. refresh()
// re-resolves the publish point; when the published file changed it opens a
// new view and swaps it in, with a bounded retry against the find/open race
// (same discipline as core::load_epoch_snapshot). Readers keep their
// shared_ptr for as long as a query runs, so a republish never invalidates
// an in-flight scan.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "query/snapshot_view.hpp"

namespace appscope::query {

class Follower {
 public:
  explicit Follower(std::string directory);

  /// Re-resolves the directory's publish point and returns a view of the
  /// newest sealed snapshot, reloading only when the published file
  /// changed. Thread-safe. Throws util::InputError when the directory
  /// holds no loadable snapshot.
  std::shared_ptr<const SnapshotView> refresh();

  /// The last view refresh() produced (nullptr before the first refresh).
  std::shared_ptr<const SnapshotView> current() const;

  /// Number of times refresh() actually swapped in a new snapshot.
  std::uint64_t reloads() const;

 private:
  struct Published {
    std::string path;
    std::uint64_t size = 0;
    std::int64_t mtime_ns = 0;

    bool operator==(const Published&) const = default;
  };

  static Published stat_published(const std::string& path);

  const std::string directory_;
  mutable std::mutex mu_;
  Published loaded_;
  std::shared_ptr<const SnapshotView> view_;
  std::uint64_t reloads_ = 0;
};

}  // namespace appscope::query
