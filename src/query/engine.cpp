#include "query/engine.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "la/simd.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace appscope::query {

namespace {

/// Rows per parallel chunk. Fixed (never derived from the thread count) so
/// the chunk-partial addition tree is identical at every pool size.
constexpr std::size_t kRowChunk = 8;

/// Sorts group aggregates for kTopK: value descending, smaller key wins a
/// tie, keep k.
void keep_top_k(std::vector<GroupValue>& groups, std::uint32_t k) {
  std::sort(groups.begin(), groups.end(),
            [](const GroupValue& a, const GroupValue& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.key < b.key;
            });
  if (groups.size() > k) groups.resize(k);
}

}  // namespace

Engine::Engine() : Engine(Options{}) {}

Engine::Engine(Options options) : cache_(options.cache_capacity) {}

Result Engine::run(const SnapshotView& view, const Slice& slice) {
  QueryPlan plan;
  {
    util::ScopedSpan span("query.plan");
    plan = plan_slice(view.header(), slice);
  }
  const std::string key =
      std::to_string(view.fingerprint()) + "|" + canonical_query(plan.slice);
  if (auto hit = cache_.get(key)) return *hit;
  Result result = execute_plan(view, plan);
  cache_.put(key, result);
  return result;
}

Result execute_plan(const SnapshotView& view, const QueryPlan& plan) {
  util::ScopedSpan span("query.scan");
  util::StageTimer timer("query.scan");
  const la::simd::Kernels& k = la::simd::active();
  const Slice& q = plan.slice;
  const std::span<const double> col = view.column(plan.section);
  const std::size_t window = plan.col_end - plan.col_begin;
  const std::size_t nrows = plan.rows.size();
  const std::uint8_t* mask =
      plan.mask.empty() ? nullptr : plan.mask.data() + plan.col_begin;

  Result result;
  result.cells =
      static_cast<std::uint64_t>(nrows) * plan.selected_per_row;
  result.bytes_scanned = plan.bytes_touched;

  const auto row_ptr = [&](std::size_t i) {
    return col.data() + plan.rows[i].elem_offset + plan.col_begin;
  };

  const bool buffered =
      q.group_by == GroupBy::kHour || q.group_by == GroupBy::kCommune;
  if (!buffered) {
    // Per-row partials in parallel (independent slots), combined
    // sequentially in plan-row order.
    std::vector<double> parts(nrows, 0.0);
    const bool want_max = q.op == Op::kMax;
    util::parallel_for(0, nrows, kRowChunk,
                       [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) {
                           const double* row = row_ptr(i);
                           if (want_max) {
                             parts[i] = mask != nullptr
                                            ? k.masked_max(row, mask, window)
                                            : k.max_value(row, window);
                           } else {
                             parts[i] =
                                 mask != nullptr
                                     ? k.masked_sum_stripes(row, mask, window)
                                     : k.sum_stripes(row, window);
                           }
                         }
                       });
    if (want_max) {
      double best = -std::numeric_limits<double>::infinity();
      for (const double p : parts) {
        if (p > best) best = p;
      }
      result.value = nrows == 0 ? 0.0 : best;
    } else {
      double total = 0.0;
      for (const double p : parts) total += p;
      result.value = q.op == Op::kMean && result.cells != 0
                         ? total / static_cast<double>(result.cells)
                         : total;
    }
    if (q.group_by == GroupBy::kService) {
      // Rows are sorted by (service, class): fold consecutive runs.
      for (std::size_t i = 0; i < nrows;) {
        const std::uint32_t svc = plan.rows[i].service;
        std::size_t run = 0;
        double agg = q.op == Op::kMax
                         ? -std::numeric_limits<double>::infinity()
                         : 0.0;
        for (; i < nrows && plan.rows[i].service == svc; ++i, ++run) {
          if (q.op == Op::kMax) {
            if (parts[i] > agg) agg = parts[i];
          } else {
            agg += parts[i];
          }
        }
        if (q.op == Op::kMean) {
          agg /= static_cast<double>(run * plan.selected_per_row);
        }
        result.groups.push_back({svc, agg});
      }
    }
  } else {
    // Buffered aggregation: accumulate rows elementwise into one window
    // buffer, in fixed chunks merged strictly in chunk order.
    std::vector<double> acc(window, 0.0);
    util::parallel_map_reduce<std::vector<double>>(
        0, nrows, kRowChunk,
        [&](std::size_t lo, std::size_t hi) {
          std::vector<double> part(window, 0.0);
          for (std::size_t i = lo; i < hi; ++i) {
            k.accumulate(part.data(), row_ptr(i), window);
          }
          return part;
        },
        [&](std::vector<double>&& part, std::size_t) {
          k.accumulate(acc.data(), part.data(), window);
        });
    const double total = mask != nullptr
                             ? k.masked_sum_stripes(acc.data(), mask, window)
                             : k.sum_stripes(acc.data(), window);
    result.value = q.op == Op::kMean && result.cells != 0
                       ? total / static_cast<double>(result.cells)
                       : total;
    const double per_group_div =
        q.op == Op::kMean ? static_cast<double>(nrows) : 1.0;
    if (q.group_by == GroupBy::kHour) {
      result.groups.reserve(window);
      for (std::size_t j = 0; j < window; ++j) {
        result.groups.push_back(
            {static_cast<std::uint32_t>(plan.col_begin + j),
             q.op == Op::kMean ? acc[j] / per_group_div : acc[j]});
      }
    } else {
      for (std::size_t c = 0; c < window; ++c) {
        if (mask != nullptr && mask[c] == 0) continue;
        result.groups.push_back(
            {static_cast<std::uint32_t>(c),
             q.op == Op::kMean ? acc[c] / per_group_div : acc[c]});
      }
    }
  }

  if (q.op == Op::kTopK) keep_top_k(result.groups, q.k);

  timer.add_bytes(result.bytes_scanned);
  if (util::MetricsRegistry::enabled()) {
    auto& m = util::MetricsRegistry::global();
    m.add("query.executed");
    m.add("query.rows_scanned", nrows);
    m.add("query.bytes_scanned", result.bytes_scanned);
  }
  return result;
}

}  // namespace appscope::query
