// appscope_query — interactive slice/aggregate queries over sealed
// "appscope.snapshot/1" files, on the lazy-mapping read path: only the
// header plus the sections a query touches are mapped and CRC-validated.
//
// Run:  ./appscope_query --snapshot=out/latest.snapshot --op=sum
//       ./appscope_query --dir=serve_out --source=national
//           --direction=downlink --hours=19:20 --op=sum
//       ./appscope_query --dir=serve_out --source=communes --op=topk
//           --k=10 --group-by=commune
//       ./appscope_query --dir=serve_out --follow --repeat=10
//       ./appscope_query --snapshot=out/latest.snapshot --slicing --check
//
// --slicing prints the same network-slicing economics lines paper_report
// emits (the CI soak job cross-checks them textually); --check recomputes
// the answer on the eager full-load path and fails loudly on divergence.
// Under --follow, --admin-port=N (or APPSCOPE_ADMIN_PORT) attaches the
// same live telemetry plane as appscope_serve, so a long poll loop is
// scrapeable too.
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>

#include "core/dataset.hpp"
#include "core/slicing.hpp"
#include "io/snapshot.hpp"
#include "obs/telemetry.hpp"
#include "query/engine.hpp"
#include "query/follower.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

using namespace appscope;

namespace {

std::vector<std::uint32_t> parse_id_list(const std::string& text,
                                         const char* what) {
  std::vector<std::uint32_t> ids;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    if (token.empty()) {
      throw util::InputError(std::string("empty id in --") + what);
    }
    ids.push_back(static_cast<std::uint32_t>(util::parse_int(token)));
    pos = comma + 1;
  }
  return ids;
}

query::Slice slice_from_args(const util::CliArgs& args) {
  query::Slice slice;
  const std::string source = args.get_string("source", "national");
  if (source == "national") {
    slice.source = query::Source::kNational;
  } else if (source == "communes") {
    slice.source = query::Source::kCommuneTotals;
  } else if (source == "urbanization") {
    slice.source = query::Source::kUrbanization;
  } else {
    throw util::InputError("unknown --source=" + source +
                           " (national|communes|urbanization)");
  }

  const std::string direction = args.get_string("direction", "downlink");
  if (direction == "downlink") {
    slice.direction = workload::Direction::kDownlink;
  } else if (direction == "uplink") {
    slice.direction = workload::Direction::kUplink;
  } else {
    throw util::InputError("unknown --direction=" + direction);
  }

  const std::string hours = args.get_string("hours", "");
  if (!hours.empty()) {
    const std::size_t colon = hours.find(':');
    if (colon == std::string::npos) {
      throw util::InputError("--hours expects begin:end (e.g. 19:20)");
    }
    slice.hour_begin =
        static_cast<std::uint32_t>(util::parse_int(hours.substr(0, colon)));
    slice.hour_end =
        static_cast<std::uint32_t>(util::parse_int(hours.substr(colon + 1)));
  }
  slice.services = parse_id_list(args.get_string("services", ""), "services");
  slice.communes = parse_id_list(args.get_string("communes", ""), "communes");
  slice.urbanization = static_cast<int>(args.get_int("class", -1));

  const std::string op = args.get_string("op", "sum");
  if (op == "sum") {
    slice.op = query::Op::kSum;
  } else if (op == "max") {
    slice.op = query::Op::kMax;
  } else if (op == "mean") {
    slice.op = query::Op::kMean;
  } else if (op == "topk") {
    slice.op = query::Op::kTopK;
  } else {
    throw util::InputError("unknown --op=" + op + " (sum|max|mean|topk)");
  }
  slice.k = static_cast<std::uint32_t>(args.get_int("k", 5));

  const std::string group = args.get_string("group-by", "none");
  if (group == "none") {
    slice.group_by = query::GroupBy::kNone;
  } else if (group == "service") {
    slice.group_by = query::GroupBy::kService;
  } else if (group == "commune") {
    slice.group_by = query::GroupBy::kCommune;
  } else if (group == "hour") {
    slice.group_by = query::GroupBy::kHour;
  } else {
    throw util::InputError("unknown --group-by=" + group);
  }
  return slice;
}

/// The exact lines core::write_markdown_report prints for the slicing
/// section — the CI soak job compares them against paper_report output.
void print_slicing(std::ostream& out, const core::SlicingReport& slices) {
  out << "### Network-slicing economics (the Sec. 1 motivation)\n\n"
      << "- static per-slice capacity (sum of peaks): "
      << util::format_bytes(slices.static_capacity) << "/h\n"
      << "- dynamic hourly reallocation: "
      << util::format_bytes(slices.dynamic_capacity) << "/h\n"
      << "- multiplexing gain from temporal heterogeneity: "
      << util::format_percent(slices.multiplexing_gain(), 1) << "\n";
}

/// Naive full-load recomputation of the slice aggregate, for --check. Runs
/// plain sequential loops over the eagerly loaded dataset, so agreement is
/// up to summation-order rounding (checked at 1e-9 relative).
double naive_value(const core::TrafficDataset& dataset,
                   const query::Slice& slice, const query::QueryPlan& plan) {
  double sum = 0.0;
  double max = 0.0;
  std::uint64_t cells = 0;
  const auto visit = [&](double v) {
    sum += v;
    if (v > max) max = v;
    ++cells;
  };
  for (const query::RowRef& row : plan.rows) {
    if (slice.source == query::Source::kCommuneTotals) {
      for (std::size_t c = plan.col_begin; c < plan.col_end; ++c) {
        if (!plan.mask.empty() && plan.mask[c] == 0) continue;
        visit(dataset.commune_total(row.service,
                                    static_cast<geo::CommuneId>(c),
                                    slice.direction));
      }
    } else {
      const auto& series =
          slice.source == query::Source::kNational
              ? dataset.national_series(row.service, slice.direction)
              : dataset.urbanization_series(
                    row.service, static_cast<geo::Urbanization>(row.cls),
                    slice.direction);
      for (std::size_t h = plan.col_begin; h < plan.col_end; ++h) {
        visit(series[h]);
      }
    }
  }
  switch (slice.op) {
    case query::Op::kMax:
      return max;
    case query::Op::kMean:
      return cells == 0 ? 0.0 : sum / static_cast<double>(cells);
    default:
      return sum;  // kSum; kTopK's overall value is the sum
  }
}

int check_against_full_load(const query::SnapshotView& view,
                            const query::Slice& slice,
                            const query::Result& result) {
  const core::TrafficDataset dataset = core::TrafficDataset::load(view.path());
  const query::QueryPlan plan = query::plan_slice(view.header(), slice);
  const double expected = naive_value(dataset, plan.slice, plan);
  const double tolerance = 1e-9 * std::max(std::abs(expected), 1.0);
  if (std::abs(result.value - expected) > tolerance) {
    std::cerr << "appscope_query: CHECK FAILED: query path "
              << util::format_double_roundtrip(result.value)
              << " vs full-load " << util::format_double_roundtrip(expected)
              << "\n";
    return 1;
  }
  // The slicing figure must agree *bitwise* across the two paths.
  const core::SlicingReport via_query =
      core::analyze_slicing(view, slice.direction);
  const core::SlicingReport via_load =
      core::analyze_slicing(dataset, slice.direction);
  if (via_query.static_capacity != via_load.static_capacity ||
      via_query.dynamic_capacity != via_load.dynamic_capacity ||
      via_query.busy_hour != via_load.busy_hour) {
    std::cerr << "appscope_query: CHECK FAILED: slicing reports diverge "
                 "between the query and full-load paths\n";
    return 1;
  }
  std::cerr << "appscope_query: check OK (full-load path agrees)\n";
  return 0;
}

void print_result(std::ostream& out, const query::Slice& slice,
                  const query::Result& result) {
  out << query::canonical_query(slice) << "\n";
  out << "value " << util::format_double_roundtrip(result.value) << "\n";
  for (const query::GroupValue& g : result.groups) {
    out << query::group_by_name(slice.group_by) << " " << g.key << " "
        << util::format_double_roundtrip(g.value) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  util::write_metrics_at_exit();
  // A follow loop is commonly killed with Ctrl-C / SIGTERM mid-poll; the
  // handler flushes the metrics JSON so the run still leaves one behind.
  util::install_metrics_signal_flush();
  util::enable_trace_export(args.get_string("trace", ""));

  try {
    const std::string snapshot = args.get_string("snapshot", "");
    const std::string dir = args.get_string("dir", "");
    if ((snapshot.empty() && dir.empty()) ||
        (!snapshot.empty() && !dir.empty())) {
      std::cerr << "usage: appscope_query (--snapshot=<file> | --dir=<dir>) "
                   "[--follow] [query flags]\n";
      return 2;
    }

    const query::Slice slice = slice_from_args(args);
    const bool follow = args.has("follow");
    if (follow && dir.empty()) {
      std::cerr << "appscope_query: --follow needs --dir\n";
      return 2;
    }
    const auto repeat =
        static_cast<std::size_t>(args.get_int("repeat", 1));
    const auto interval =
        std::chrono::milliseconds(args.get_int("interval-ms", 200));

    std::unique_ptr<obs::TelemetryPlane> telemetry;
    if (follow) {
      const int admin_port = obs::resolve_admin_port(
          static_cast<int>(args.get_int("admin-port", -1)));
      if (admin_port >= 0) {
        obs::TelemetryOptions topts;
        topts.admin.port = static_cast<std::uint16_t>(admin_port);
        topts.sampler.interval =
            std::chrono::milliseconds(args.get_int("admin-sample-ms", 1000));
        telemetry = std::make_unique<obs::TelemetryPlane>(topts);
        telemetry->start();
        std::cerr << "appscope_query: admin endpoint on http://127.0.0.1:"
                  << telemetry->port()
                  << " (/metrics /healthz /statusz /tracez)\n";
      }
    }

    query::Engine engine(
        {.cache_capacity =
             static_cast<std::size_t>(args.get_int("cache", 128))});

    std::shared_ptr<const query::SnapshotView> view;
    query::Follower follower(dir);
    if (snapshot.empty()) {
      view = follower.refresh();
    } else {
      view = std::make_shared<const query::SnapshotView>(snapshot);
    }

    query::Result result;
    for (std::size_t i = 0; i < repeat; ++i) {
      if (i != 0) {
        std::this_thread::sleep_for(interval);
        if (follow) view = follower.refresh();
      }
      result = engine.run(*view, slice);
    }

    print_result(std::cout, slice, result);
    if (args.has("slicing")) {
      print_slicing(std::cout, core::analyze_slicing(*view, slice.direction));
    }
    if (args.has("stats")) {
      std::cerr << "appscope_query: snapshot " << view->path() << " ("
                << view->file_bytes() << " bytes, " << view->mapped_bytes()
                << " mapped), cache " << engine.cache().hits() << " hits / "
                << engine.cache().misses() << " misses, scanned "
                << result.bytes_scanned << " bytes\n";
    }
    if (args.has("check")) {
      return check_against_full_load(*view, slice, result);
    }
    return 0;
  } catch (const util::Error& e) {
    std::cerr << "appscope_query: " << e.what() << "\n";
    return 1;
  }
}
