// appscope/query/snapshot_view.hpp
//
// Read-side handle on one "appscope.snapshot/1" file for the query engine:
// a lazily-mapping io::SnapshotReader plus typed row accessors over the
// three aggregate cubes. Opening a view maps and validates only the header
// and section table; the first query that touches a cube maps and
// CRC-checks just that section (see snapshot_reader.hpp). Row accessors are
// zero-copy spans into the mapping and are safe to call from any number of
// reader threads concurrently.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "geo/commune.hpp"
#include "io/snapshot_reader.hpp"
#include "workload/catalog.hpp"
#include "workload/service.hpp"

namespace appscope::query {

class SnapshotView {
 public:
  /// Opens `path` in lazy validation mode. Throws util::InputError on a
  /// structurally invalid file (header/table problems); per-section
  /// corruption surfaces on first touch of that section.
  explicit SnapshotView(const std::string& path);

  const io::SnapshotHeader& header() const noexcept { return reader_.header(); }
  std::size_t services() const noexcept { return header().services; }
  std::size_t communes() const noexcept { return header().communes; }
  std::size_t hours() const noexcept { return header().hours; }

  /// Cheap identity of the open snapshot: config hash, traffic seed, file
  /// size and table CRC mixed into one value. Two snapshots with equal
  /// fingerprints hold the same aggregates for caching purposes.
  std::uint64_t fingerprint() const noexcept;

  /// Hourly national series of one (service, direction): hours() doubles.
  std::span<const double> national_row(std::size_t service,
                                       workload::Direction d) const;

  /// Weekly per-commune totals of one (service, direction): communes()
  /// doubles indexed by commune id.
  std::span<const double> commune_row(std::size_t service,
                                      workload::Direction d) const;

  /// Hourly series of one (service, urbanization class, direction).
  std::span<const double> urbanization_row(std::size_t service,
                                           geo::Urbanization u,
                                           workload::Direction d) const;

  /// Whole f64 column of one aggregate cube section, validated against the
  /// header dimensions (maps + CRC-checks the section on first touch).
  /// Precondition: `id` names one of the three cube sections.
  std::span<const double> column(io::SectionId id) const;

  /// The embedded service catalog, decoded on first use (touches the
  /// catalog section only). Thread-safe.
  const workload::ServiceCatalog& catalog() const;

  std::uint64_t mapped_bytes() const noexcept { return reader_.mapped_bytes(); }
  std::uint64_t file_bytes() const noexcept { return reader_.file_bytes(); }
  const std::string& path() const noexcept { return reader_.path(); }
  const io::SnapshotReader& reader() const noexcept { return reader_; }

 private:
  std::span<const double> validated_column(io::SectionId id,
                                           std::size_t expected_elems) const;

  io::SnapshotReader reader_;
  mutable std::once_flag catalog_once_;
  mutable std::unique_ptr<const workload::ServiceCatalog> catalog_;
};

}  // namespace appscope::query
