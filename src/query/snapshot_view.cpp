#include "query/snapshot_view.hpp"

#include "io/serialize.hpp"
#include "util/error.hpp"

namespace appscope::query {

namespace {

std::size_t direction_index(workload::Direction d) noexcept {
  return static_cast<std::size_t>(d);
}

}  // namespace

SnapshotView::SnapshotView(const std::string& path)
    : reader_(path, io::ValidationMode::kLazy) {}

std::uint64_t SnapshotView::fingerprint() const noexcept {
  // FNV-1a over the identity fields; any republished snapshot with
  // different content changes file_bytes or table_crc (per-section CRCs
  // feed the table, the table CRC feeds the header).
  const io::SnapshotHeader& h = header();
  std::uint64_t x = 1469598103934665603ull;
  const auto mix = [&x](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      x ^= (v >> (8 * i)) & 0xff;
      x *= 1099511628211ull;
    }
  };
  mix(h.config_hash);
  mix(h.traffic_seed);
  mix(h.file_bytes);
  mix(h.table_crc);
  return x;
}

std::span<const double> SnapshotView::validated_column(
    io::SectionId id, std::size_t expected_elems) const {
  const std::span<const double> col = reader_.f64_section(id);
  if (col.size() != expected_elems) {
    throw util::InputError("snapshot: " + path() + ": section '" +
                           std::string(io::section_name(id)) +
                           "' element count disagrees with the header "
                           "dimensions");
  }
  return col;
}

std::span<const double> SnapshotView::column(io::SectionId id) const {
  switch (id) {
    case io::SectionId::kNationalSeries:
      return validated_column(id, services() * 2 * hours());
    case io::SectionId::kCommuneTotals:
      return validated_column(id, 2 * services() * communes());
    case io::SectionId::kUrbanizationSeries:
      return validated_column(
          id, services() * geo::kUrbanizationCount * 2 * hours());
    default:
      break;
  }
  throw util::PreconditionError(
      "SnapshotView::column: not an aggregate cube section");
}

std::span<const double> SnapshotView::national_row(std::size_t service,
                                                   workload::Direction d) const {
  APPSCOPE_REQUIRE(service < services(),
                   "SnapshotView::national_row: service out of range");
  const std::size_t h = hours();
  const auto col = column(io::SectionId::kNationalSeries);
  return col.subspan((service * 2 + direction_index(d)) * h, h);
}

std::span<const double> SnapshotView::commune_row(std::size_t service,
                                                  workload::Direction d) const {
  APPSCOPE_REQUIRE(service < services(),
                   "SnapshotView::commune_row: service out of range");
  const std::size_t c = communes();
  const auto col = column(io::SectionId::kCommuneTotals);
  return col.subspan(direction_index(d) * services() * c + service * c, c);
}

std::span<const double> SnapshotView::urbanization_row(
    std::size_t service, geo::Urbanization u, workload::Direction d) const {
  APPSCOPE_REQUIRE(service < services(),
                   "SnapshotView::urbanization_row: service out of range");
  const std::size_t h = hours();
  const auto col = column(io::SectionId::kUrbanizationSeries);
  const std::size_t cls = static_cast<std::size_t>(u);
  return col.subspan(
      ((service * geo::kUrbanizationCount + cls) * 2 + direction_index(d)) * h,
      h);
}

const workload::ServiceCatalog& SnapshotView::catalog() const {
  std::call_once(catalog_once_, [this] {
    catalog_ = std::make_unique<const workload::ServiceCatalog>(
        io::decode_catalog(reader_.section(io::SectionId::kCatalog)));
  });
  return *catalog_;
}

}  // namespace appscope::query
