// appscope/geo/urbanization.hpp
//
// Density-based urbanization classifier approximating the INSEE communal
// classification the paper uses (https://www.insee.fr/fr/information/2115011):
// the real grid works on contiguous built-up population; at commune
// granularity, population density separates the same three classes.
#pragma once

#include "geo/commune.hpp"

namespace appscope::geo {

struct UrbanizationThresholds {
  /// Density at or above which a commune is urban (people / km²).
  double urban_density = 1500.0;
  /// Density at or above which a commune is semi-urban.
  double semi_urban_density = 300.0;
  /// Minimum population for the urban class regardless of density.
  std::uint32_t urban_min_population = 10000;
};

/// Classifies by density (and the urban population floor). Never returns
/// kTgv — the TGV tag is applied afterwards to rural communes near a line
/// (see tag_tgv_communes in territory.hpp).
Urbanization classify_urbanization(const Commune& commune,
                                   const UrbanizationThresholds& thresholds = {});

}  // namespace appscope::geo
