#include "geo/territory.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace appscope::geo {

Territory::Territory(std::vector<Commune> communes, std::vector<Metro> metros,
                     std::vector<Polyline> tgv_lines, double side_km)
    : communes_(std::move(communes)),
      metros_(std::move(metros)),
      tgv_lines_(std::move(tgv_lines)),
      side_km_(side_km) {
  APPSCOPE_REQUIRE(!communes_.empty(), "Territory: no communes");
  for (std::size_t i = 0; i < communes_.size(); ++i) {
    APPSCOPE_REQUIRE(communes_[i].id == i, "Territory: commune ids must be dense");
  }
}

const Commune& Territory::commune(CommuneId id) const {
  APPSCOPE_REQUIRE(id < communes_.size(), "Territory::commune: id out of range");
  return communes_[id];
}

std::vector<std::size_t> Territory::communes_in(Urbanization u) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < communes_.size(); ++i) {
    if (communes_[i].urbanization == u) out.push_back(i);
  }
  return out;
}

std::array<std::size_t, kUrbanizationCount> Territory::class_counts() const noexcept {
  std::array<std::size_t, kUrbanizationCount> counts{};
  for (const auto& c : communes_) {
    ++counts[static_cast<std::size_t>(c.urbanization)];
  }
  return counts;
}

std::uint64_t Territory::total_population() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : communes_) total += c.population;
  return total;
}

std::uint64_t Territory::population_in(Urbanization u) const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : communes_) {
    if (c.urbanization == u) total += c.population;
  }
  return total;
}

namespace {

std::vector<Metro> place_metros(const CountryConfig& cfg, util::Rng& rng) {
  std::vector<Metro> metros;
  metros.reserve(cfg.metro_count);
  const double margin = 0.12 * cfg.side_km;
  const double min_separation = cfg.side_km / 8.0;
  for (std::size_t m = 0; m < cfg.metro_count; ++m) {
    Point p;
    // Rejection placement keeping metros apart; bounded attempts keep the
    // builder total even for dense configurations.
    for (int attempt = 0; attempt < 256; ++attempt) {
      p = Point{rng.uniform(margin, cfg.side_km - margin),
                rng.uniform(margin, cfg.side_km - margin)};
      bool ok = true;
      for (const auto& other : metros) {
        if (distance_km(p, other.center) < min_separation) {
          ok = false;
          break;
        }
      }
      if (ok) break;
    }
    Metro metro;
    // Built in two steps: gcc 12's -Wrestrict misfires on the inlined
    // temporary from operator+(const char*, std::string&&) at -O2.
    metro.name = "M";
    metro.name += std::to_string(m);
    metro.center = p;
    metro.population = static_cast<std::uint32_t>(
        static_cast<double>(cfg.largest_metro_population) *
        std::pow(static_cast<double>(m + 1), -cfg.metro_zipf_exponent));
    metro.radius_km =
        6.0 + 0.9 * std::sqrt(static_cast<double>(metro.population) / 1000.0);
    metros.push_back(std::move(metro));
  }
  return metros;
}

std::vector<Polyline> build_tgv_lines(const CountryConfig& cfg,
                                      const std::vector<Metro>& metros,
                                      util::Rng& rng) {
  std::vector<Polyline> lines;
  const std::size_t n_lines =
      std::min(cfg.tgv_line_count, metros.size() > 1 ? metros.size() - 1 : 0);
  for (std::size_t i = 0; i < n_lines; ++i) {
    // Radiate from the largest metro to the next-largest ones, with a
    // jittered midpoint so lines cross countryside rather than beeline.
    const Point a = metros[0].center;
    const Point b = metros[i + 1].center;
    const Point mid{(a.x_km + b.x_km) / 2.0 + rng.normal(0.0, 0.04 * cfg.side_km),
                    (a.y_km + b.y_km) / 2.0 + rng.normal(0.0, 0.04 * cfg.side_km)};
    lines.push_back(Polyline{{a, mid, b}});
  }
  return lines;
}

}  // namespace

Territory build_synthetic_country(const CountryConfig& cfg) {
  APPSCOPE_REQUIRE(cfg.commune_count >= 16, "country: needs >= 16 communes");
  APPSCOPE_REQUIRE(cfg.metro_count >= 1, "country: needs >= 1 metro");
  APPSCOPE_REQUIRE(cfg.commune_count >= 4 * cfg.metro_count,
                   "country: needs >= 4 communes per metro");
  APPSCOPE_REQUIRE(cfg.side_km > 10.0, "country: side too small");
  APPSCOPE_REQUIRE(cfg.metro_commune_fraction > 0.0 &&
                       cfg.metro_commune_fraction < 1.0,
                   "country: metro_commune_fraction must be in (0,1)");

  util::Rng rng(cfg.seed);
  util::Rng metro_rng = rng.fork(1);
  util::Rng commune_rng = rng.fork(2);
  util::Rng coverage_rng = rng.fork(3);

  std::vector<Metro> metros = place_metros(cfg, metro_rng);
  std::vector<Polyline> tgv_lines = build_tgv_lines(cfg, metros, metro_rng);

  std::vector<Commune> communes;
  communes.reserve(cfg.commune_count);

  // --- Metro commune clusters -------------------------------------------
  const auto n_metro_communes = static_cast<std::size_t>(
      cfg.metro_commune_fraction * static_cast<double>(cfg.commune_count));
  // Communes per metro scale sublinearly with population so small metros
  // still get a meaningful cluster.
  std::vector<double> metro_weights;
  metro_weights.reserve(metros.size());
  for (const auto& m : metros) {
    metro_weights.push_back(std::pow(static_cast<double>(m.population), 0.75));
  }
  const double weight_total =
      std::accumulate(metro_weights.begin(), metro_weights.end(), 0.0);

  for (std::size_t m = 0; m < metros.size(); ++m) {
    auto count = static_cast<std::size_t>(
        std::max(4.0, std::round(static_cast<double>(n_metro_communes) *
                                 metro_weights[m] / weight_total)));
    // Raw population weights decay with distance from the metro core.
    std::vector<Point> positions(count);
    std::vector<double> raw(count);
    double raw_total = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      const double radius = std::abs(commune_rng.normal(0.0, metros[m].radius_km));
      const double angle = commune_rng.uniform(0.0, 2.0 * M_PI);
      positions[i] = Point{
          std::clamp(metros[m].center.x_km + radius * std::cos(angle), 0.0,
                     cfg.side_km),
          std::clamp(metros[m].center.y_km + radius * std::sin(angle), 0.0,
                     cfg.side_km)};
      raw[i] = std::exp(-radius / metros[m].radius_km) *
               commune_rng.lognormal(0.0, 0.5);
      if (i > 0) raw_total += raw[i];  // the core's share is fixed, see below
    }
    for (std::size_t i = 0; i < count; ++i) {
      Commune c;
      c.id = static_cast<CommuneId>(communes.size());
      c.name = metros[m].name + "-C" + std::to_string(i);
      c.centroid = i == 0 ? metros[m].center : positions[i];
      // The first commune is the metro's core and holds a fixed share of
      // the population; satellites share the rest by decayed weight.
      const double share =
          i == 0 ? cfg.metro_core_share
                 : (1.0 - cfg.metro_core_share) * raw[i] / raw_total;
      c.population = static_cast<std::uint32_t>(
          static_cast<double>(metros[m].population) * share);
      // Denser cores sit on smaller communes.
      c.area_km2 = commune_rng.uniform(3.0, 14.0);
      c.metro = static_cast<std::uint32_t>(m);
      communes.push_back(std::move(c));
      if (communes.size() >= cfg.commune_count) break;
    }
    if (communes.size() >= cfg.commune_count) break;
  }

  // --- Rural scatter -------------------------------------------------------
  std::size_t rural_index = 0;
  while (communes.size() < cfg.commune_count) {
    Commune c;
    c.id = static_cast<CommuneId>(communes.size());
    c.name = "R-C" + std::to_string(rural_index++);
    c.centroid = Point{commune_rng.uniform(0.0, cfg.side_km),
                       commune_rng.uniform(0.0, cfg.side_km)};
    const double pop = commune_rng.lognormal(cfg.rural_lognormal_mu,
                                             cfg.rural_lognormal_sigma);
    c.population = static_cast<std::uint32_t>(std::clamp(pop, 25.0, 25'000.0));
    c.area_km2 = commune_rng.uniform(8.0, 30.0);
    communes.push_back(std::move(c));
  }

  // --- Classification ------------------------------------------------------
  for (auto& c : communes) {
    c.urbanization = classify_urbanization(c, cfg.thresholds);
  }
  // TGV tag: rural communes near a high-speed line.
  for (auto& c : communes) {
    if (c.urbanization != Urbanization::kRural) continue;
    for (const auto& line : tgv_lines) {
      if (line.distance_km(c.centroid) <= cfg.tgv_distance_km) {
        c.urbanization = Urbanization::kTgv;
        break;
      }
    }
  }

  // --- Coverage --------------------------------------------------------------
  for (auto& c : communes) {
    double p4g = cfg.p4g_rural;
    double p3g = cfg.p3g_rural;
    switch (c.urbanization) {
      case Urbanization::kUrban:
        p4g = cfg.p4g_urban;
        p3g = cfg.p3g_urban;
        break;
      case Urbanization::kSemiUrban:
        p4g = cfg.p4g_semi;
        p3g = cfg.p3g_semi;
        break;
      case Urbanization::kTgv:
        p4g = cfg.p4g_tgv;
        p3g = cfg.p3g_semi;
        break;
      case Urbanization::kRural:
        break;
    }
    c.has_4g = coverage_rng.bernoulli(p4g);
    c.has_3g = c.has_4g || coverage_rng.bernoulli(p3g);
  }

  return Territory(std::move(communes), std::move(metros), std::move(tgv_lines),
                   cfg.side_km);
}

}  // namespace appscope::geo
