// appscope/geo/commune.hpp
//
// The commune is the paper's spatial unit: one of >36,000 administrative
// regions tiling the country (average surface ~16 km²). All traffic is
// aggregated at commune level because the ULI localization error (~3 km
// median) makes finer tesselation meaningless.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "geo/point.hpp"

namespace appscope::geo {

using CommuneId = std::uint32_t;

/// INSEE-style land-use classes, plus the paper's extra "TGV" category:
/// rural communes crossed by a high-speed train line behave like a separate
/// population (Fig. 11) and are analysed as their own group.
enum class Urbanization : std::uint8_t {
  kUrban = 0,
  kSemiUrban = 1,
  kRural = 2,
  kTgv = 3,  // rural + crossed by a high-speed line
};

inline constexpr std::size_t kUrbanizationCount = 4;

std::string_view urbanization_name(Urbanization u) noexcept;

struct Commune {
  CommuneId id = 0;
  std::string name;
  Point centroid;
  double area_km2 = 16.0;
  /// Resident population (census-like).
  std::uint32_t population = 0;
  Urbanization urbanization = Urbanization::kRural;
  /// Index of the metro area this commune belongs to, or kNoMetro.
  std::uint32_t metro = kNoMetro;
  /// Radio coverage of the commune's base stations.
  bool has_3g = true;
  bool has_4g = false;

  static constexpr std::uint32_t kNoMetro = 0xFFFFFFFFu;

  double density_per_km2() const noexcept {
    return area_km2 > 0.0 ? static_cast<double>(population) / area_km2 : 0.0;
  }
};

}  // namespace appscope::geo
