#include "geo/spatial_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace appscope::geo {

SpatialIndex::SpatialIndex(const Territory& territory, double cell_km)
    : territory_(territory), cell_km_(cell_km) {
  APPSCOPE_REQUIRE(cell_km > 0.0, "SpatialIndex: cell size must be positive");
  cols_ = static_cast<std::size_t>(std::ceil(territory.side_km() / cell_km_)) + 1;
  rows_ = cols_;
  buckets_.resize(cols_ * rows_);
  points_.reserve(territory.size());
  for (const auto& commune : territory.communes()) {
    points_.push_back(commune.centroid);
    buckets_[bucket_of(commune.centroid)].push_back(commune.id);
  }
}

std::size_t SpatialIndex::bucket_of(const Point& p) const noexcept {
  const auto cx = static_cast<std::size_t>(
      std::clamp(p.x_km / cell_km_, 0.0, static_cast<double>(cols_ - 1)));
  const auto cy = static_cast<std::size_t>(
      std::clamp(p.y_km / cell_km_, 0.0, static_cast<double>(rows_ - 1)));
  return cy * cols_ + cx;
}

std::vector<CommuneId> SpatialIndex::within_radius(const Point& p,
                                                   double radius_km) const {
  APPSCOPE_REQUIRE(radius_km >= 0.0, "within_radius: negative radius");
  const auto reach = static_cast<long>(std::ceil(radius_km / cell_km_));
  const auto cx = static_cast<long>(
      std::clamp(p.x_km / cell_km_, 0.0, static_cast<double>(cols_ - 1)));
  const auto cy = static_cast<long>(
      std::clamp(p.y_km / cell_km_, 0.0, static_cast<double>(rows_ - 1)));

  std::vector<std::pair<double, CommuneId>> hits;
  for (long dy = -reach; dy <= reach; ++dy) {
    const long y = cy + dy;
    if (y < 0 || y >= static_cast<long>(rows_)) continue;
    for (long dx = -reach; dx <= reach; ++dx) {
      const long x = cx + dx;
      if (x < 0 || x >= static_cast<long>(cols_)) continue;
      for (const CommuneId id :
           buckets_[static_cast<std::size_t>(y) * cols_ + static_cast<std::size_t>(x)]) {
        const double d = distance_km(p, points_[id]);
        if (d <= radius_km) hits.emplace_back(d, id);
      }
    }
  }
  std::sort(hits.begin(), hits.end());
  std::vector<CommuneId> out;
  out.reserve(hits.size());
  for (const auto& [d, id] : hits) out.push_back(id);
  return out;
}

CommuneId SpatialIndex::nearest(const Point& p) const {
  APPSCOPE_REQUIRE(!points_.empty(), "SpatialIndex: empty index");
  // Expand the search radius ring by ring until a hit is found, then verify
  // one extra ring (a closer point can live in a farther bucket corner).
  for (double radius = cell_km_;; radius *= 2.0) {
    const auto hits = within_radius(p, radius);
    if (!hits.empty()) return hits.front();
    if (radius > 4.0 * territory_.side_km()) break;
  }
  // Degenerate fallback: linear scan.
  CommuneId best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const double d = distance_km(p, points_[i]);
    if (d < best_d) {
      best_d = d;
      best = static_cast<CommuneId>(i);
    }
  }
  return best;
}

std::vector<CommuneId> SpatialIndex::neighbors(CommuneId c,
                                               double radius_km) const {
  APPSCOPE_REQUIRE(c < points_.size(), "neighbors: commune out of range");
  std::vector<CommuneId> out = within_radius(points_[c], radius_km);
  out.erase(std::remove(out.begin(), out.end(), c), out.end());
  return out;
}

}  // namespace appscope::geo
