// appscope/geo/spatial_index.hpp
//
// Grid-bucketed nearest-neighbour index over commune centroids. Used to
// model the ULI localization error (paper Sec. 2: the median error of
// ULI-based positioning is ~3 km, so a session can be attributed to a
// neighbouring commune) and available for any proximity query over the
// territory.
#pragma once

#include <vector>

#include "geo/territory.hpp"

namespace appscope::geo {

class SpatialIndex {
 public:
  /// Indexes all commune centroids of the territory; `cell_km` is the
  /// bucket size (a few times the typical query radius works well).
  explicit SpatialIndex(const Territory& territory, double cell_km = 12.0);

  /// Communes whose centroid lies within `radius_km` of `p` (inclusive),
  /// in ascending distance order. Always exact (the grid only accelerates).
  std::vector<CommuneId> within_radius(const Point& p, double radius_km) const;

  /// The commune whose centroid is closest to `p`.
  CommuneId nearest(const Point& p) const;

  /// Neighbour communes of `c` within `radius_km`, excluding `c` itself.
  std::vector<CommuneId> neighbors(CommuneId c, double radius_km) const;

  std::size_t size() const noexcept { return points_.size(); }

 private:
  std::size_t bucket_of(const Point& p) const noexcept;

  const Territory& territory_;
  double cell_km_;
  std::size_t cols_ = 0;
  std::size_t rows_ = 0;
  std::vector<Point> points_;
  /// bucket -> commune ids
  std::vector<std::vector<CommuneId>> buckets_;
};

}  // namespace appscope::geo
