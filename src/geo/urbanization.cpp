#include "geo/urbanization.hpp"

namespace appscope::geo {

std::string_view urbanization_name(Urbanization u) noexcept {
  switch (u) {
    case Urbanization::kUrban: return "Urban";
    case Urbanization::kSemiUrban: return "Semi-Urban";
    case Urbanization::kRural: return "Rural";
    case Urbanization::kTgv: return "TGV";
  }
  return "???";
}

Urbanization classify_urbanization(const Commune& commune,
                                   const UrbanizationThresholds& thresholds) {
  const double density = commune.density_per_km2();
  if (density >= thresholds.urban_density ||
      commune.population >= thresholds.urban_min_population) {
    return Urbanization::kUrban;
  }
  if (density >= thresholds.semi_urban_density) return Urbanization::kSemiUrban;
  return Urbanization::kRural;
}

}  // namespace appscope::geo
