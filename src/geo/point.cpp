#include "geo/point.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace appscope::geo {

double distance_km(const Point& a, const Point& b) noexcept {
  const double dx = a.x_km - b.x_km;
  const double dy = a.y_km - b.y_km;
  return std::sqrt(dx * dx + dy * dy);
}

double point_segment_distance_km(const Point& p, const Point& a,
                                 const Point& b) noexcept {
  const double abx = b.x_km - a.x_km;
  const double aby = b.y_km - a.y_km;
  const double len2 = abx * abx + aby * aby;
  if (len2 <= 0.0) return distance_km(p, a);
  const double t = std::clamp(
      ((p.x_km - a.x_km) * abx + (p.y_km - a.y_km) * aby) / len2, 0.0, 1.0);
  const Point proj{a.x_km + t * abx, a.y_km + t * aby};
  return distance_km(p, proj);
}

double Polyline::distance_km(const Point& p) const {
  APPSCOPE_REQUIRE(points.size() >= 2, "Polyline: needs >= 2 points");
  double best = point_segment_distance_km(p, points[0], points[1]);
  for (std::size_t i = 1; i + 1 < points.size(); ++i) {
    best = std::min(best, point_segment_distance_km(p, points[i], points[i + 1]));
  }
  return best;
}

double Polyline::length_km() const noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    total += geo::distance_km(points[i], points[i + 1]);
  }
  return total;
}

}  // namespace appscope::geo
