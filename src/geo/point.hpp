// appscope/geo/point.hpp
//
// Planar geometry for the synthetic-country substrate. The country lives on
// a flat km-scale plane (projection error is irrelevant at the fidelity of
// commune-level aggregation, whose localization error is ~3 km in the paper).
#pragma once

#include <vector>

namespace appscope::geo {

struct Point {
  double x_km = 0.0;
  double y_km = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Euclidean distance in km.
double distance_km(const Point& a, const Point& b) noexcept;

/// Distance from a point to the segment [a, b] in km.
double point_segment_distance_km(const Point& p, const Point& a,
                                 const Point& b) noexcept;

/// A polyline (e.g. a TGV high-speed rail line).
struct Polyline {
  std::vector<Point> points;

  /// Minimum distance from `p` to any segment; requires >= 2 points.
  double distance_km(const Point& p) const;

  /// Total length in km.
  double length_km() const noexcept;
};

}  // namespace appscope::geo
