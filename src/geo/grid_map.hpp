// appscope/geo/grid_map.hpp
//
// Rasterizes per-commune values onto a regular grid and renders them as
// ASCII shade maps or PGM images — the reproduction medium for the Fig. 9
// maps (per-subscriber Twitter/Netflix activity, 3G/4G coverage).
#pragma once

#include <string>
#include <vector>

#include "geo/territory.hpp"

namespace appscope::geo {

class GridMap {
 public:
  /// cols × rows raster covering [0, side_km]².
  GridMap(std::size_t cols, std::size_t rows, double side_km);

  std::size_t cols() const noexcept { return cols_; }
  std::size_t rows() const noexcept { return rows_; }

  /// Accumulates `value` into the cell containing `p` (mean of deposits).
  void deposit(const Point& p, double value);

  /// Mean deposited value of a cell (0 if the cell received no deposits).
  double cell(std::size_t col, std::size_t row) const;

  /// True if the cell received at least one deposit.
  bool occupied(std::size_t col, std::size_t row) const;

  /// Largest mean cell value.
  double max_cell() const noexcept;

  /// ASCII shade rendering; `log_scale` maps values through log10 first
  /// (traffic maps span many decades). Empty cells render as spaces.
  std::string render_ascii(bool log_scale = true) const;

  /// Binary PGM (P2 text) rendering for external viewing.
  std::string render_pgm(bool log_scale = true) const;

 private:
  std::size_t index(std::size_t col, std::size_t row) const;
  std::vector<double> normalized_levels(bool log_scale) const;

  std::size_t cols_;
  std::size_t rows_;
  double side_km_;
  std::vector<double> sums_;
  std::vector<std::uint32_t> counts_;
};

/// Builds a map of per-commune values over the territory.
/// `values[i]` corresponds to territory.communes()[i].
GridMap map_commune_values(const Territory& territory,
                           const std::vector<double>& values,
                           std::size_t cols = 72, std::size_t rows = 36);

/// Coverage map: cells are 2 where any 4G commune lands, 1 for 3G-only,
/// unset where no commune exists (Fig. 9 right).
GridMap map_coverage(const Territory& territory, std::size_t cols = 72,
                     std::size_t rows = 36);

}  // namespace appscope::geo
