#include "geo/grid_map.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace appscope::geo {

GridMap::GridMap(std::size_t cols, std::size_t rows, double side_km)
    : cols_(cols),
      rows_(rows),
      side_km_(side_km),
      sums_(cols * rows, 0.0),
      counts_(cols * rows, 0) {
  APPSCOPE_REQUIRE(cols > 0 && rows > 0, "GridMap: empty raster");
  APPSCOPE_REQUIRE(side_km > 0.0, "GridMap: side must be positive");
}

std::size_t GridMap::index(std::size_t col, std::size_t row) const {
  APPSCOPE_REQUIRE(col < cols_ && row < rows_, "GridMap: cell out of range");
  return row * cols_ + col;
}

void GridMap::deposit(const Point& p, double value) {
  const double fx = std::clamp(p.x_km / side_km_, 0.0, 1.0);
  const double fy = std::clamp(p.y_km / side_km_, 0.0, 1.0);
  const auto col = std::min(cols_ - 1, static_cast<std::size_t>(fx * static_cast<double>(cols_)));
  const auto row = std::min(rows_ - 1, static_cast<std::size_t>(fy * static_cast<double>(rows_)));
  const std::size_t i = index(col, row);
  sums_[i] += value;
  ++counts_[i];
}

double GridMap::cell(std::size_t col, std::size_t row) const {
  const std::size_t i = index(col, row);
  return counts_[i] > 0 ? sums_[i] / static_cast<double>(counts_[i]) : 0.0;
}

bool GridMap::occupied(std::size_t col, std::size_t row) const {
  return counts_[index(col, row)] > 0;
}

double GridMap::max_cell() const noexcept {
  double best = 0.0;
  for (std::size_t i = 0; i < sums_.size(); ++i) {
    if (counts_[i] > 0) {
      best = std::max(best, sums_[i] / static_cast<double>(counts_[i]));
    }
  }
  return best;
}

std::vector<double> GridMap::normalized_levels(bool log_scale) const {
  // Normalize occupied cells to [0, 1]; unoccupied cells get -1.
  std::vector<double> levels(sums_.size(), -1.0);
  double lo = 0.0;
  double hi = 0.0;
  bool any = false;
  for (std::size_t i = 0; i < sums_.size(); ++i) {
    if (counts_[i] == 0) continue;
    double v = sums_[i] / static_cast<double>(counts_[i]);
    if (log_scale) v = std::log10(std::max(v, 1e-12));
    levels[i] = v;
    if (!any) {
      lo = hi = v;
      any = true;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const double range = hi - lo > 0.0 ? hi - lo : 1.0;
  for (double& v : levels) {
    if (v >= lo) v = (v - lo) / range;  // occupied cells only
  }
  return levels;
}

std::string GridMap::render_ascii(bool log_scale) const {
  static constexpr const char* kShades = " .:-=+*%@#";
  const std::vector<double> levels = normalized_levels(log_scale);
  std::string out;
  out.reserve((cols_ + 1) * rows_);
  // Render north-up: row 0 of the raster is y≈0 (south), print it last.
  for (std::size_t r = rows_; r-- > 0;) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const double v = levels[r * cols_ + c];
      if (v < 0.0) {
        out.push_back(' ');
      } else {
        const auto shade =
            static_cast<std::size_t>(std::min(9.0, 1.0 + std::floor(v * 9.0)));
        out.push_back(kShades[shade]);
      }
    }
    out.push_back('\n');
  }
  return out;
}

std::string GridMap::render_pgm(bool log_scale) const {
  const std::vector<double> levels = normalized_levels(log_scale);
  std::string out = "P2\n" + std::to_string(cols_) + " " + std::to_string(rows_) +
                    "\n255\n";
  for (std::size_t r = rows_; r-- > 0;) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const double v = levels[r * cols_ + c];
      const int grey = v < 0.0 ? 0 : static_cast<int>(std::lround(40.0 + v * 215.0));
      out += std::to_string(grey);
      out.push_back(c + 1 < cols_ ? ' ' : '\n');
    }
  }
  return out;
}

GridMap map_commune_values(const Territory& territory,
                           const std::vector<double>& values, std::size_t cols,
                           std::size_t rows) {
  APPSCOPE_REQUIRE(values.size() == territory.size(),
                   "map_commune_values: one value per commune required");
  GridMap map(cols, rows, territory.side_km());
  for (std::size_t i = 0; i < values.size(); ++i) {
    map.deposit(territory.communes()[i].centroid, values[i]);
  }
  return map;
}

GridMap map_coverage(const Territory& territory, std::size_t cols,
                     std::size_t rows) {
  GridMap map(cols, rows, territory.side_km());
  for (const auto& c : territory.communes()) {
    map.deposit(c.centroid, c.has_4g ? 2.0 : (c.has_3g ? 1.0 : 0.0));
  }
  return map;
}

}  // namespace appscope::geo
