// appscope/geo/territory_io.hpp
//
// CSV persistence for the synthetic territory: export the commune registry
// (for mapping/joins in external tools) and re-import it, so a geography
// can be pinned and shared independently of the generator version.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "geo/territory.hpp"

namespace appscope::geo {

/// Writes one row per commune:
/// id,name,x_km,y_km,area_km2,population,urbanization,metro,has_3g,has_4g.
void write_territory_csv(const Territory& territory, std::ostream& out);

/// Parses a document produced by write_territory_csv back into communes.
/// Metros and TGV lines are not persisted (they are generator inputs, not
/// analysis inputs); the returned Territory carries the communes only.
/// `side_km` must cover all commune coordinates.
/// Throws InputError on malformed content.
Territory read_territory_csv(std::string_view text, double side_km);

}  // namespace appscope::geo
