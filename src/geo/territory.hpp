// appscope/geo/territory.hpp
//
// The synthetic country: a France-like territory with >36,000 communes,
// metro areas with Zipf-distributed populations, high-speed (TGV) rail lines
// connecting the top metros, and 3G/4G coverage. Substitutes for the real
// French commune geography the paper aggregates over (see DESIGN.md): the
// analyses depend only on the rank-size population statistics, the
// urban/semi-urban/rural/TGV partition, and coverage — all reproduced here.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "geo/commune.hpp"
#include "geo/urbanization.hpp"

namespace appscope::geo {

/// A metropolitan area seed (Paris/Lyon/Marseille analogues).
struct Metro {
  std::string name;
  Point center;
  /// Total population of the metro's communes.
  std::uint32_t population = 0;
  /// Characteristic radius of the commune cluster (km).
  double radius_km = 15.0;
};

struct CountryConfig {
  /// Number of communes (France: >36,000). Tests use smaller presets.
  std::size_t commune_count = 36'000;
  /// Number of metro areas.
  std::size_t metro_count = 14;
  /// Country side length (square territory), km.
  double side_km = 1000.0;
  /// Seed for all geographic randomness.
  std::uint64_t seed = 2016;

  /// Population of the largest metro (Paris analogue).
  std::uint32_t largest_metro_population = 2'200'000;
  /// Zipf exponent of the metro rank-size law (France ≈ 1.07).
  double metro_zipf_exponent = 1.07;
  /// Fraction of communes clustered around metros (rest scattered rural).
  double metro_commune_fraction = 0.30;
  /// Share of a metro's population living in its core commune (Paris is a
  /// single commune of 2.2M; without a dominant core the synthetic country
  /// underestimates the paper's Fig. 8 traffic concentration).
  double metro_core_share = 0.40;
  /// Rural commune population: lognormal(mu, sigma), French median ≈ 400.
  double rural_lognormal_mu = 5.75;
  double rural_lognormal_sigma = 1.0;

  /// Rural communes within this distance of a TGV line get the TGV tag.
  double tgv_distance_km = 5.0;
  /// Number of TGV lines radiating from the largest metro.
  std::size_t tgv_line_count = 4;

  UrbanizationThresholds thresholds;

  /// 4G coverage probability by class (3G is near-ubiquitous).
  double p4g_urban = 0.99;
  double p4g_semi = 0.75;
  double p4g_rural = 0.30;
  /// 3G is near-pervasive (the paper's coverage map, Fig. 9 right).
  double p3g_urban = 1.0;
  double p3g_semi = 1.0;
  double p3g_rural = 0.995;
  /// TGV corridors are deliberately covered by operators.
  double p4g_tgv = 0.85;
};

/// Immutable snapshot of the synthetic country.
class Territory {
 public:
  Territory(std::vector<Commune> communes, std::vector<Metro> metros,
            std::vector<Polyline> tgv_lines, double side_km);

  const std::vector<Commune>& communes() const noexcept { return communes_; }
  const std::vector<Metro>& metros() const noexcept { return metros_; }
  const std::vector<Polyline>& tgv_lines() const noexcept { return tgv_lines_; }
  double side_km() const noexcept { return side_km_; }

  std::size_t size() const noexcept { return communes_.size(); }

  /// Commune by id; ids are dense [0, size()).
  const Commune& commune(CommuneId id) const;

  /// Indices of communes in a given urbanization class.
  std::vector<std::size_t> communes_in(Urbanization u) const;

  /// Number of communes per urbanization class.
  std::array<std::size_t, kUrbanizationCount> class_counts() const noexcept;

  /// Sum of commune populations.
  std::uint64_t total_population() const noexcept;

  /// Population living in a given urbanization class.
  std::uint64_t population_in(Urbanization u) const noexcept;

 private:
  std::vector<Commune> communes_;
  std::vector<Metro> metros_;
  std::vector<Polyline> tgv_lines_;
  double side_km_ = 0.0;
};

/// Deterministically builds the synthetic country from `config`.
/// Throws PreconditionError on inconsistent configuration (e.g. fewer
/// communes than metros).
Territory build_synthetic_country(const CountryConfig& config);

}  // namespace appscope::geo
