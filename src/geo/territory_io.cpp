#include "geo/territory_io.hpp"

#include <ostream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace appscope::geo {

namespace {
const std::vector<std::string> kHeader = {
    "id",   "name",         "x_km",  "y_km",   "area_km2",
    "population", "urbanization", "metro", "has_3g", "has_4g"};

Urbanization parse_urbanization(const std::string& text) {
  for (std::size_t u = 0; u < kUrbanizationCount; ++u) {
    if (urbanization_name(static_cast<Urbanization>(u)) == text) {
      return static_cast<Urbanization>(u);
    }
  }
  throw util::InputError("territory csv: unknown urbanization '" + text + "'");
}
}  // namespace

void write_territory_csv(const Territory& territory, std::ostream& out) {
  util::CsvWriter csv(out);
  csv.write_row(kHeader);
  for (const auto& c : territory.communes()) {
    csv.write_row({std::to_string(c.id), c.name,
                   util::format_double(c.centroid.x_km, 3),
                   util::format_double(c.centroid.y_km, 3),
                   util::format_double(c.area_km2, 3),
                   std::to_string(c.population),
                   std::string(urbanization_name(c.urbanization)),
                   c.metro == Commune::kNoMetro ? "-" : std::to_string(c.metro),
                   c.has_3g ? "1" : "0", c.has_4g ? "1" : "0"});
  }
}

Territory read_territory_csv(std::string_view text, double side_km) {
  const auto rows = util::CsvReader::parse(text);
  if (rows.empty() || rows.front() != kHeader) {
    throw util::InputError("territory csv: missing or unexpected header");
  }
  std::vector<Commune> communes;
  communes.reserve(rows.size() - 1);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& r = rows[i];
    if (r.size() != kHeader.size()) {
      throw util::InputError("territory csv: bad arity at row " +
                             std::to_string(i));
    }
    Commune c;
    c.id = static_cast<CommuneId>(util::parse_int(r[0]));
    if (c.id != communes.size()) {
      throw util::InputError("territory csv: ids must be dense and ordered");
    }
    c.name = r[1];
    c.centroid = Point{util::parse_double(r[2]), util::parse_double(r[3])};
    if (c.centroid.x_km < 0.0 || c.centroid.x_km > side_km ||
        c.centroid.y_km < 0.0 || c.centroid.y_km > side_km) {
      throw util::InputError("territory csv: commune outside the country at row " +
                             std::to_string(i));
    }
    c.area_km2 = util::parse_double(r[4]);
    c.population = static_cast<std::uint32_t>(util::parse_int(r[5]));
    c.urbanization = parse_urbanization(r[6]);
    c.metro = r[7] == "-" ? Commune::kNoMetro
                          : static_cast<std::uint32_t>(util::parse_int(r[7]));
    c.has_3g = r[8] == "1";
    c.has_4g = r[9] == "1";
    communes.push_back(std::move(c));
  }
  return Territory(std::move(communes), {}, {}, side_km);
}

}  // namespace appscope::geo
