// appscope/util/csv.hpp
//
// Minimal RFC-4180-ish CSV reading/writing used by benches and examples to
// export figure data for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace appscope::util {

/// Streaming CSV writer. Quotes fields containing separators/quotes/newlines.
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out, char sep = ',');

  /// Writes one row; each field is escaped as needed.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: writes a row of doubles formatted with `digits` decimals.
  void write_numeric_row(const std::vector<double>& values, int digits = 6);

  std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::string escape(std::string_view field) const;

  std::ostream& out_;
  char sep_;
  std::size_t rows_ = 0;
};

/// In-memory CSV document (small files: configs, expectations).
class CsvReader {
 public:
  /// Parses the full document; throws InputError on unbalanced quotes.
  static std::vector<std::vector<std::string>> parse(std::string_view text,
                                                     char sep = ',');

  /// Reads and parses a file; throws InputError if unreadable.
  static std::vector<std::vector<std::string>> parse_file(
      const std::string& path, char sep = ',');
};

}  // namespace appscope::util
