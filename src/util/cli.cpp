#include "util/cli.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace appscope::util {

CliArgs::CliArgs(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string_view token = argv[i];
    if (starts_with(token, "--") && token.size() > 2) {
      const std::size_t eq = token.find('=');
      Option opt;
      if (eq == std::string_view::npos) {
        opt.name = std::string(token.substr(2));
      } else {
        opt.name = std::string(token.substr(2, eq - 2));
        opt.value = std::string(token.substr(eq + 1));
      }
      options_.push_back(std::move(opt));
    } else {
      positionals_.emplace_back(token);
    }
  }
}

bool CliArgs::has(std::string_view name) const noexcept {
  for (const auto& opt : options_) {
    if (opt.name == name) return true;
  }
  return false;
}

std::optional<std::string> CliArgs::value(std::string_view name) const noexcept {
  for (const auto& opt : options_) {
    if (opt.name == name && opt.value) return opt.value;
  }
  return std::nullopt;
}

std::string CliArgs::get_string(std::string_view name,
                                std::string default_value) const {
  const auto v = value(name);
  return v ? *v : std::move(default_value);
}

std::int64_t CliArgs::get_int(std::string_view name,
                              std::int64_t default_value) const {
  const auto v = value(name);
  if (!v) return default_value;
  return parse_int(*v);
}

double CliArgs::get_double(std::string_view name, double default_value) const {
  const auto v = value(name);
  if (!v) return default_value;
  return parse_double(*v);
}

}  // namespace appscope::util
