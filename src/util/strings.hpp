// appscope/util/strings.hpp
//
// Small string helpers shared across modules (formatting, splitting, units).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace appscope::util {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view text);

/// Formats a double with `digits` significant decimal places ("3.14").
std::string format_double(double value, int digits = 3);

/// Shortest decimal representation that parses back to exactly `value`
/// (std::to_chars round-trip guarantee; at most max_digits10 = 17
/// significant digits). Use for data files that must survive a
/// write -> parse cycle without precision loss.
std::string format_double_roundtrip(double value);

/// Formats a fraction as a percentage string ("46.2%").
std::string format_percent(double fraction, int digits = 1);

/// Human-readable byte volume ("1.5 KB", "23.4 MB", "1.2 GB").
std::string format_bytes(double bytes);

/// Left/right-pads `text` with spaces to `width` (no-op if already wider).
std::string pad_right(std::string_view text, std::size_t width);
std::string pad_left(std::string_view text, std::size_t width);

/// Parses a double / integer, throwing InputError on malformed input.
double parse_double(std::string_view text);
std::int64_t parse_int(std::string_view text);

}  // namespace appscope::util
