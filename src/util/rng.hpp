// appscope/util/rng.hpp
//
// Deterministic random-number generation for reproducible experiments.
//
// Every synthetic-data component in appscope draws randomness from an
// explicitly seeded Rng; results never depend on wall-clock entropy, so the
// same scenario seed regenerates the same figures bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace appscope::util {

/// SplitMix64: used to expand a single 64-bit seed into stream states.
/// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies the UniformRandomBitGenerator requirements so it composes with
/// <random> distributions, but appscope ships its own samplers below for
/// cross-platform determinism (libstdc++/libc++ distributions differ).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64(seed).
  explicit Rng(std::uint64_t seed = 0x5EEDCAFEF00DULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  std::uint64_t operator()() noexcept { return next_u64(); }
  std::uint64_t next_u64() noexcept;

  /// Derives an independent child stream; children with distinct tags are
  /// statistically independent of the parent and of each other.
  Rng fork(std::uint64_t tag) const noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). Requires n > 0 (unbiased via rejection).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Standard normal via Box-Muller (cached second variate).
  double normal() noexcept;
  /// Normal with given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma) noexcept;
  /// Log-normal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;
  /// Exponential with rate lambda > 0.
  double exponential(double lambda) noexcept;
  /// Poisson with mean lambda >= 0 (inversion for small, PTRS for large).
  std::uint64_t poisson(double lambda) noexcept;
  /// Bernoulli with success probability p in [0,1].
  bool bernoulli(double p) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Samples ranks from a (bounded) Zipf distribution P(k) ∝ k^-s, k in [1, n].
/// Uses the rejection-inversion method of Hörmann & Derflinger (1996), O(1)
/// per sample for any s > 0, s != 1 handled uniformly.
class ZipfSampler {
 public:
  /// n: number of ranks (>= 1); s: exponent (> 0).
  ZipfSampler(std::uint64_t n, double s);

  /// Draws a rank in [1, n].
  std::uint64_t operator()(Rng& rng) const noexcept;

  std::uint64_t n() const noexcept { return n_; }
  double exponent() const noexcept { return s_; }

 private:
  double h(double x) const noexcept;
  double h_inv(double x) const noexcept;

  std::uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double t_;  // rejection threshold helper
};

/// Draws an index in [0, weights.size()) with probability proportional to
/// weights[i]. Built once (O(n)), sampled in O(1) via Walker's alias method.
class AliasSampler {
 public:
  explicit AliasSampler(const std::vector<double>& weights);

  std::size_t operator()(Rng& rng) const noexcept;
  std::size_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace appscope::util
