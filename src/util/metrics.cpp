#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <limits>
#include <unordered_map>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/mem_stats.hpp"
#include "util/trace.hpp"

namespace appscope::util {

namespace {

enum CellKind : int { kCounterCell = 0, kGaugeCell = 1, kHistogramCell = 2 };

bool env_enabled() {
  const char* env = std::getenv("APPSCOPE_METRICS");
  if (env == nullptr) return false;
  const std::string_view v(env);
  return !v.empty() && v != "0" && v != "false" && v != "off";
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Monotone stamp ordering gauge writes across shards: the merge keeps the
/// most recently written value.
std::atomic<std::uint64_t> g_gauge_clock{0};

void atomic_add(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value < cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value > cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

struct SvHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};
struct SvEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return a == b;
  }
};

/// Thread-local cache of (registry id -> shard); ids are never reused, so
/// stale entries for destroyed registries can never be matched.
struct ShardRef {
  std::uint64_t registry_id;
  void* shard;
};
thread_local std::vector<ShardRef> t_metric_shards;

}  // namespace

std::size_t histogram_bucket(double value) noexcept {
  if (!(value > 0.0)) return 0;
  const int idx = std::ilogb(value) - kHistogramMinExp;
  if (idx < 0) return 0;
  if (idx >= static_cast<int>(kHistogramBuckets)) return kHistogramBuckets - 1;
  return static_cast<std::size_t>(idx);
}

/// One named metric slot. All values are atomics so the owner thread can
/// keep recording while a scrape reads; `active` distinguishes live cells
/// from reset ones.
struct MetricsRegistry::Cell {
  std::string name;
  int kind = kCounterCell;
  std::atomic<bool> active{false};
  /// Counter value, or histogram observation count.
  std::atomic<std::uint64_t> count{0};
  /// Gauge value, or histogram sum.
  std::atomic<double> value{0.0};
  std::atomic<std::uint64_t> gauge_stamp{0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
};

/// Per-thread slice of the registry. `index` is touched only by the owning
/// thread (lock-free lookups); `mutex` serializes cell allocation against
/// scrape/reset iteration. std::deque keeps cell addresses stable, so
/// cached pointers and the lock-free fast path survive growth.
/// Cache-line aligned so two threads' shards never share a line: the hot
/// path is one atomic RMW per record, and cross-shard false sharing would
/// put that RMW in contention even though the shards are logically private.
struct alignas(64) MetricsRegistry::Shard {
  std::mutex mutex;
  std::deque<Cell> cells;
  std::unordered_map<std::string, Cell*, SvHash, SvEq> index;
};

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  for (const ShardRef& ref : t_metric_shards) {
    if (ref.registry_id == id_) return *static_cast<Shard*>(ref.shard);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  t_metric_shards.push_back({id_, shard});
  return *shard;
}

MetricsRegistry::Cell& MetricsRegistry::cell(std::string_view name, int kind) {
  Shard& shard = local_shard();
  const auto it = shard.index.find(name);
  if (it != shard.index.end()) {
    APPSCOPE_REQUIRE(it->second->kind == kind,
                     "MetricsRegistry: metric kind mismatch: " + std::string(name));
    return *it->second;
  }
  const std::lock_guard<std::mutex> lock(shard.mutex);
  Cell& c = shard.cells.emplace_back();
  c.name = std::string(name);
  c.kind = kind;
  shard.index.emplace(c.name, &c);
  return c;
}

void MetricsRegistry::add(std::string_view counter, std::uint64_t delta) {
  Cell& c = cell(counter, kCounterCell);
  c.count.fetch_add(delta, std::memory_order_relaxed);
  c.active.store(true, std::memory_order_relaxed);
}

void MetricsRegistry::gauge(std::string_view name, double value) {
  Cell& c = cell(name, kGaugeCell);
  c.value.store(value, std::memory_order_relaxed);
  c.gauge_stamp.store(g_gauge_clock.fetch_add(1, std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
  c.active.store(true, std::memory_order_relaxed);
}

void MetricsRegistry::observe(std::string_view histogram, double value) {
  // Harden against caller bugs: NaN or negative observations would poison
  // the running sum (NaN is sticky through atomic_add) and min/max. Clamp
  // them into the underflow bucket and count the incident — a watchdog can
  // alert on metrics.invalid_observations without the series going bad.
  if (!(value >= 0.0) || !std::isfinite(value)) {
    add("metrics.invalid_observations");
    value = 0.0;
  }
  Cell& c = cell(histogram, kHistogramCell);
  c.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(c.value, value);
  atomic_min(c.min, value);
  atomic_max(c.max, value);
  c.buckets[histogram_bucket(value)].fetch_add(1, std::memory_order_relaxed);
  c.active.store(true, std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  snapshot_into(out);
  return out;
}

void MetricsRegistry::snapshot_into(MetricsSnapshot& out) const {
  // Zero the existing entries instead of clearing the maps: in the steady
  // state (same metric name set every tick) the merge below lands on the
  // nodes already allocated, so a periodic sampler ticks allocation-free.
  for (auto& [name, value] : out.counters) value = 0;
  for (auto& [name, value] : out.gauges) value = 0.0;
  for (auto& [name, h] : out.histograms) h = HistogramSnapshot{};
  std::map<std::string, std::uint64_t> gauge_stamps;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    for (const Cell& c : shard->cells) {
      if (!c.active.load(std::memory_order_relaxed)) continue;
      switch (c.kind) {
        case kCounterCell:
          out.counters[c.name] += c.count.load(std::memory_order_relaxed);
          break;
        case kGaugeCell: {
          const std::uint64_t stamp =
              c.gauge_stamp.load(std::memory_order_relaxed);
          auto [it, inserted] = gauge_stamps.try_emplace(c.name, stamp);
          if (inserted || stamp >= it->second) {
            it->second = stamp;
            out.gauges[c.name] = c.value.load(std::memory_order_relaxed);
          }
          break;
        }
        case kHistogramCell: {
          HistogramSnapshot& h = out.histograms[c.name];
          const bool first = h.count == 0;
          h.count += c.count.load(std::memory_order_relaxed);
          h.sum += c.value.load(std::memory_order_relaxed);
          const double lo = c.min.load(std::memory_order_relaxed);
          const double hi = c.max.load(std::memory_order_relaxed);
          h.min = first ? lo : std::min(h.min, lo);
          h.max = first ? hi : std::max(h.max, hi);
          for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
            h.buckets[b] += c.buckets[b].load(std::memory_order_relaxed);
          }
          break;
        }
      }
    }
  }
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    for (Cell& c : shard->cells) {
      c.active.store(false, std::memory_order_relaxed);
      c.count.store(0, std::memory_order_relaxed);
      c.value.store(0.0, std::memory_order_relaxed);
      c.gauge_stamp.store(0, std::memory_order_relaxed);
      c.min.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
      c.max.store(-std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
      for (auto& b : c.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry& MetricsRegistry::global() {
  // Intentionally immortal: worker threads and atexit exporters may still
  // record or scrape during static destruction.
  static auto* registry = new MetricsRegistry();
  return *registry;
}

bool MetricsRegistry::enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void MetricsRegistry::set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// StageTimer

StageTimer::StageTimer(std::string stage)
    : active_(MetricsRegistry::enabled()), stage_(std::move(stage)) {
  if (active_) start_ = std::chrono::steady_clock::now();
}

StageTimer::~StageTimer() { stop(); }

void StageTimer::stop() {
  if (!active_) return;
  active_ = false;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::string prefix = "stage." + stage_;
  reg.observe(prefix + ".wall_seconds", wall);
  reg.add(prefix + ".calls", 1);
  const std::uint64_t items = items_.load(std::memory_order_relaxed);
  if (items > 0) reg.add(prefix + ".items", items);
  const std::uint64_t bytes = bytes_.load(std::memory_order_relaxed);
  if (bytes > 0) reg.add(prefix + ".bytes", bytes);
}

// ---------------------------------------------------------------------------
// Export

namespace {

constexpr std::string_view kSchema = "appscope.metrics/1";

Json histogram_to_json(const HistogramSnapshot& h) {
  Json::Object obj;
  obj.emplace("count", Json(h.count));
  obj.emplace("sum", Json(h.sum));
  obj.emplace("min", Json(h.min));
  obj.emplace("max", Json(h.max));
  obj.emplace("mean", Json(h.mean()));
  // Sparse bucket map (index -> count); most of the 40 buckets are empty.
  Json::Object buckets;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (h.buckets[b] > 0) buckets.emplace(std::to_string(b), Json(h.buckets[b]));
  }
  obj.emplace("buckets", Json(std::move(buckets)));
  return Json(std::move(obj));
}

std::string format_csv_double(double v) {
  std::array<char, 40> buf{};
  std::snprintf(buf.data(), buf.size(), "%.17g", v);
  return buf.data();
}

}  // namespace

Json metrics_to_json(const MetricsSnapshot& snapshot) {
  Json::Object doc;
  doc.emplace("schema", Json(std::string(kSchema)));
  Json::Object counters;
  for (const auto& [name, value] : snapshot.counters) {
    counters.emplace(name, Json(value));
  }
  doc.emplace("counters", Json(std::move(counters)));
  Json::Object gauges;
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.emplace(name, Json(value));
  }
  doc.emplace("gauges", Json(std::move(gauges)));
  Json::Object histograms;
  for (const auto& [name, h] : snapshot.histograms) {
    histograms.emplace(name, histogram_to_json(h));
  }
  doc.emplace("histograms", Json(std::move(histograms)));
  return Json(std::move(doc));
}

MetricsSnapshot metrics_from_json(const Json& doc) {
  if (!doc.is_object() || !doc.contains("schema") ||
      !doc.at("schema").is_string() ||
      doc.at("schema").as_string() != kSchema) {
    throw InputError("metrics_from_json: unknown schema (want " +
                     std::string(kSchema) + ")");
  }
  MetricsSnapshot out;
  for (const auto& [name, value] : doc.at("counters").as_object()) {
    out.counters[name] = static_cast<std::uint64_t>(value.as_int());
  }
  for (const auto& [name, value] : doc.at("gauges").as_object()) {
    out.gauges[name] = value.as_double();
  }
  for (const auto& [name, value] : doc.at("histograms").as_object()) {
    HistogramSnapshot h;
    h.count = static_cast<std::uint64_t>(value.at("count").as_int());
    h.sum = value.at("sum").as_double();
    h.min = value.at("min").as_double();
    h.max = value.at("max").as_double();
    for (const auto& [bucket, n] : value.at("buckets").as_object()) {
      const std::size_t idx = std::stoul(bucket);
      APPSCOPE_REQUIRE(idx < kHistogramBuckets,
                       "metrics_from_json: bucket index out of range");
      h.buckets[idx] = static_cast<std::uint64_t>(n.as_int());
    }
    out.histograms[name] = h;
  }
  return out;
}

std::string metrics_to_csv(const MetricsSnapshot& snapshot) {
  std::string out = "kind,name,value,count,sum,min,max\n";
  for (const auto& [name, value] : snapshot.counters) {
    out += "counter," + name + "," + std::to_string(value) + ",,,,\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += "gauge," + name + "," + format_csv_double(value) + ",,,,\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out += "histogram," + name + ",," + std::to_string(h.count) + "," +
           format_csv_double(h.sum) + "," + format_csv_double(h.min) + "," +
           format_csv_double(h.max) + "\n";
  }
  return out;
}

void write_metrics_json(const std::string& path) {
  Json doc = metrics_to_json(MetricsRegistry::global().snapshot());
  const TraceRecorder& recorder = TraceRecorder::global();
  Json::Array spans;
  for (const TraceEvent& event : recorder.snapshot()) {
    Json::Object span;
    span.emplace("name", Json(event.name));
    span.emplace("span_id", Json(event.span_id));
    span.emplace("parent_id", Json(event.parent_id));
    span.emplace("thread", Json(static_cast<std::uint64_t>(event.thread)));
    span.emplace("depth", Json(static_cast<std::uint64_t>(event.depth)));
    span.emplace("start_ns", Json(event.start_ns));
    span.emplace("duration_ns", Json(event.duration_ns));
    if (event.alloc_count > 0) span.emplace("alloc_count", Json(event.alloc_count));
    if (event.alloc_bytes > 0) span.emplace("alloc_bytes", Json(event.alloc_bytes));
    if (event.rss_peak_bytes > 0) {
      span.emplace("rss_peak_bytes", Json(event.rss_peak_bytes));
    }
    spans.emplace_back(std::move(span));
  }
  // The per-thread buffer cap must never be silent: the dropped count rides
  // along as a first-class counter (and the legacy top-level key).
  Json::Object& counters = doc.as_object()["counters"].as_object();
  counters["trace.dropped_events"] = Json(recorder.dropped_events());
  if (mem_trace_compiled()) {
    const MemCounters mem = process_mem_counters();
    counters["mem.alloc_count"] = Json(mem.alloc_count);
    counters["mem.alloc_bytes"] = Json(mem.alloc_bytes);
  }
  if (const std::uint64_t peak = peak_rss_bytes(); peak > 0) {
    doc.as_object()["gauges"].as_object()["mem.peak_rss_bytes"] = Json(peak);
  }
  doc.as_object().emplace("spans", Json(std::move(spans)));
  doc.as_object().emplace("spans_dropped", Json(recorder.dropped_events()));

  std::ofstream file(path);
  APPSCOPE_REQUIRE(file.good(),
                   "write_metrics_json: cannot open for writing: " + path);
  file << doc.dump(2) << '\n';
  file.close();
  APPSCOPE_REQUIRE(file.good(), "write_metrics_json: write failed: " + path);
}

std::string metrics_output_path() {
  if (const char* env = std::getenv("APPSCOPE_METRICS_PATH")) {
    if (*env != '\0') return env;
  }
  return "metrics.json";
}

bool flush_metrics_best_effort() noexcept {
  if (!MetricsRegistry::enabled()) return false;
  try {
    write_metrics_json(metrics_output_path());
    return true;
  } catch (...) {
    return false;
  }
}

namespace {

extern "C" void metrics_flush_signal_handler(int sig) {
  // Best effort by design: write_metrics_json allocates, which is not
  // async-signal-safe — but this handler only runs on the way to _exit, so
  // the worst case (a deadlock would require the signal to land inside the
  // allocator or the registry mutex) is no metrics file, the same outcome
  // as not trying. The upside — SIGTERM'd runs keeping their telemetry —
  // is worth the attempt.
  flush_metrics_best_effort();
  std::_Exit(128 + sig);
}

}  // namespace

void install_metrics_signal_flush() {
  static const bool installed = [] {
    std::signal(SIGTERM, metrics_flush_signal_handler);
    std::signal(SIGINT, metrics_flush_signal_handler);
    return true;
  }();
  (void)installed;
}

// ---------------------------------------------------------------------------
// Interval diffing

double histogram_bucket_upper_bound(std::size_t index) noexcept {
  return std::ldexp(1.0, static_cast<int>(index) + 1 + kHistogramMinExp);
}

double histogram_quantile(const HistogramSnapshot& h, double q) noexcept {
  if (h.count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank over the cumulative bucket counts; the answer is the
  // containing bucket's upper bound (clamped to the recorded max for the
  // last, unbounded bucket).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(h.count)));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    cumulative += h.buckets[b];
    if (cumulative >= rank && cumulative > 0) {
      if (b + 1 == kHistogramBuckets) return h.max;
      return std::min(histogram_bucket_upper_bound(b), h.max);
    }
  }
  return h.max;
}

MetricsSnapshot metrics_delta(const MetricsSnapshot& prev,
                              const MetricsSnapshot& cur) {
  MetricsSnapshot out;
  for (const auto& [name, value] : cur.counters) {
    const auto it = prev.counters.find(name);
    const std::uint64_t before = it == prev.counters.end() ? 0 : it->second;
    out.counters[name] = value >= before ? value - before : value;
  }
  out.gauges = cur.gauges;
  for (const auto& [name, h] : cur.histograms) {
    const auto it = prev.histograms.find(name);
    if (it == prev.histograms.end()) {
      out.histograms[name] = h;
      continue;
    }
    const HistogramSnapshot& p = it->second;
    HistogramSnapshot d;
    d.count = h.count >= p.count ? h.count - p.count : h.count;
    d.sum = h.sum - p.sum;
    d.min = h.min;  // running extremes: interval-local extremes are not
    d.max = h.max;  // recoverable from the cumulative form
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      d.buckets[b] =
          h.buckets[b] >= p.buckets[b] ? h.buckets[b] - p.buckets[b] : h.buckets[b];
    }
    out.histograms[name] = d;
  }
  return out;
}

void write_metrics_at_exit() {
  static const bool registered = [] {
    std::atexit([] {
      if (!MetricsRegistry::enabled()) return;
      try {
        write_metrics_json(metrics_output_path());
      } catch (...) {
        // Exporting observability data must never turn a successful run
        // into a failing exit.
      }
    });
    return true;
  }();
  (void)registered;
}

}  // namespace appscope::util
