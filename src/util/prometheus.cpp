#include "util/prometheus.hpp"

#include <array>
#include <cstdio>

namespace appscope::util {

namespace {

bool legal_name_byte(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// %.17g round-trips every double; integral values render without exponent
/// noise ("3" not "3.0000000000000000e+00" — %g trims).
std::string format_value(double v) {
  std::array<char, 40> buf{};
  std::snprintf(buf.data(), buf.size(), "%.17g", v);
  return buf.data();
}

void render_header(std::string& out, const std::string& name,
                   std::string_view registry_name, std::string_view type) {
  out += "# HELP " + name + " appscope metric " +
         prometheus_escape_help(registry_name) + "\n";
  out += "# TYPE " + name + " ";
  out += type;
  out += "\n";
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') {
    out += '_';
  }
  for (const char c : name) out += legal_name_byte(c) ? c : '_';
  if (out.empty()) out = "_";
  return out;
}

std::string prometheus_escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string prometheus_escape_label(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string metrics_to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prometheus_name(name);
    render_header(out, prom, name, "counter");
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prometheus_name(name);
    render_header(out, prom, name, "gauge");
    out += prom + " " + format_value(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = prometheus_name(name);
    render_header(out, prom, name, "histogram");
    // Power-of-two buckets are per-slot counts; Prometheus buckets are
    // cumulative. The registry's last bucket is clamped (no finite upper
    // bound), so it folds into the mandatory +Inf bucket.
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b + 1 < kHistogramBuckets; ++b) {
      cumulative += h.buckets[b];
      // Empty leading/trailing buckets are skipped to keep the exposition
      // compact, but once a bucket has been rendered every later one must
      // be too (cumulative counts may never appear to decrease) — so only
      // all-zero prefixes are elided.
      if (cumulative == 0 && h.buckets[b] == 0) continue;
      out += prom + "_bucket{le=\"" +
             format_value(histogram_bucket_upper_bound(b)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += prom + "_sum " + format_value(h.sum) + "\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

}  // namespace appscope::util
