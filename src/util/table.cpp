#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace appscope::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  APPSCOPE_REQUIRE(!header_.empty(), "TextTable needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  APPSCOPE_REQUIRE(row.size() == header_.size(),
                   "TextTable row arity must match header");
  rows_.push_back(std::move(row));
}

void TextTable::render(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << pad_right(row[c], widths[c]);
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string ascii_bar(double value, double max, std::size_t width) {
  if (!(max > 0.0) || !std::isfinite(value)) return std::string(width, '-');
  const double frac = std::clamp(value / max, 0.0, 1.0);
  const auto filled = static_cast<std::size_t>(std::lround(frac * static_cast<double>(width)));
  std::string bar(filled, '#');
  bar.append(width - filled, '-');
  return bar;
}

std::string sparkline(const std::vector<double>& values) {
  static constexpr const char* kLevels = " .:-=+*#";
  if (values.empty()) return {};
  double lo = values.front();
  double hi = values.front();
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi - lo;
  std::string out;
  out.reserve(values.size());
  for (const double v : values) {
    const double frac = range > 0.0 ? (v - lo) / range : 0.0;
    const auto level = static_cast<std::size_t>(
        std::min(7.0, std::floor(frac * 8.0)));
    out.push_back(kLevels[level]);
  }
  return out;
}

std::string ascii_chart(const std::vector<double>& values, std::size_t height,
                        std::size_t max_width) {
  if (values.empty() || height == 0) return {};
  // Downsample to max_width columns by averaging buckets.
  std::vector<double> cols;
  if (values.size() <= max_width) {
    cols = values;
  } else {
    cols.resize(max_width, 0.0);
    std::vector<std::size_t> counts(max_width, 0);
    for (std::size_t i = 0; i < values.size(); ++i) {
      const std::size_t c = i * max_width / values.size();
      cols[c] += values[i];
      ++counts[c];
    }
    for (std::size_t c = 0; c < max_width; ++c) {
      if (counts[c] > 0) cols[c] /= static_cast<double>(counts[c]);
    }
  }
  double lo = cols.front();
  double hi = cols.front();
  for (const double v : cols) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi - lo > 0.0 ? hi - lo : 1.0;
  std::string out;
  for (std::size_t row = 0; row < height; ++row) {
    const double level = 1.0 - static_cast<double>(row) / static_cast<double>(height);
    out += "  |";
    for (const double v : cols) {
      const double frac = (v - lo) / range;
      out.push_back(frac >= level - 1e-12 ? '#' : ' ');
    }
    out.push_back('\n');
  }
  out += "  +" + std::string(cols.size(), '-') + '\n';
  return out;
}

std::string rule(const std::string& title, std::size_t width) {
  std::string out = "== " + title + " ";
  if (out.size() < width) out.append(width - out.size(), '=');
  return out;
}

}  // namespace appscope::util
