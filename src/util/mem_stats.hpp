// appscope/util/mem_stats.hpp
//
// Opt-in memory accounting for the per-stage trace spans (util/trace.hpp):
//
//   * allocation count/bytes come from a counting operator new/delete shim
//     that is compiled only when the build sets -DAPPSCOPE_MEM_TRACE=ON
//     (cmake option). Without the shim the counters read as zero and
//     mem_trace_compiled() is false — the accessors below always link.
//   * peak/current RSS come from portable process probes (getrusage /
//     /proc/self/statm) and work in every build.
//
// Sampling into spans is additionally gated at runtime by the
// APPSCOPE_MEM_TRACE environment variable (or set_mem_sampling), so a
// shim-enabled binary pays only the per-allocation counter updates until
// sampling is requested. Accounting is pure observation: it changes no
// allocation and no analysis result.
#pragma once

#include <cstdint>

namespace appscope::util {

struct MemCounters {
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t free_count = 0;
};

/// True when this binary was built with the counting operator new shim
/// (-DAPPSCOPE_MEM_TRACE=ON).
bool mem_trace_compiled() noexcept;

/// Allocations made by the calling thread since it started (zeros when the
/// shim is compiled out). Reading takes no lock and never allocates.
MemCounters thread_mem_counters() noexcept;

/// Allocations made by the whole process (zeros when the shim is out).
MemCounters process_mem_counters() noexcept;

/// Peak resident set size of the process in bytes (getrusage ru_maxrss;
/// 0 when the platform offers no probe). Monotone, so spans sample it only
/// at close.
std::uint64_t peak_rss_bytes() noexcept;

/// Current resident set size in bytes (/proc/self/statm on Linux; 0 when
/// unavailable). Never allocates, so it is safe inside the span hooks.
std::uint64_t current_rss_bytes() noexcept;

/// Runtime gate for per-span memory sampling. Initialized from the
/// APPSCOPE_MEM_TRACE environment variable ("0"/"false"/"off"/empty mean
/// off); tests flip it via set_mem_sampling.
bool mem_sampling_enabled() noexcept;
void set_mem_sampling(bool on) noexcept;

}  // namespace appscope::util
