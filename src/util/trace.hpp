// appscope/util/trace.hpp
//
// Structured span tracing for the pipeline. Every ScopedSpan gets a
// process-unique span_id and records its parent_id (the span that was
// active on the thread — or the submitting thread, for util::ThreadPool
// tasks — when it opened), so the recorded events form a DAG that survives
// work-stealing across the pool. Recording stays lock-free on the hot path
// via the per-thread shards of the process-wide TraceRecorder.
//
// Exports:
//   * util/metrics.hpp embeds the span list in metrics.json ("spans");
//   * trace_to_chrome_json / write_trace_json emit the Chrome trace-event
//     format (schema appscope.trace/1), loadable in chrome://tracing and
//     Perfetto; enable_trace_export wires it to --trace=PATH /
//     APPSCOPE_TRACE on the report and bench binaries;
//   * util/trace_analysis.hpp aggregates spans per name and computes the
//     critical path of a run from the span DAG.
//
// Same gating contract as the metrics registry: spans record only while
// MetricsRegistry::enabled() is true, recording never feeds back into any
// analysis result, and the disabled path allocates nothing.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace appscope::util {

class Json;

struct TraceEvent {
  std::string name;
  /// Process-unique span id (never 0 for a recorded span).
  std::uint64_t span_id = 0;
  /// Span that was active when this one opened; 0 for a root span. For a
  /// ThreadPool task this is a span on the *submitting* thread.
  std::uint64_t parent_id = 0;
  /// Recorder-assigned dense thread index (0 = first recording thread).
  std::uint32_t thread = 0;
  /// Nesting depth in the span DAG (0 = root); crosses thread boundaries.
  std::uint32_t depth = 0;
  /// Start offset since the recorder's epoch, and span length.
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  /// Memory accounting (zero unless APPSCOPE_MEM_TRACE sampling is on):
  /// allocations made by this span's thread while the span was open (needs
  /// the compiled counting-new shim, see util/mem_stats.hpp) and the
  /// process peak RSS observed when the span closed.
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t rss_peak_bytes = 0;
};

/// The calling thread's position in the span DAG: the innermost open span
/// and the number of open ancestors. Capture it where work is submitted and
/// restore it (SpanContextScope) on the thread that executes the work, so
/// spans opened there parent to the submitting span.
struct SpanContext {
  std::uint64_t span_id = 0;
  std::uint32_t depth = 0;
};

/// The calling thread's current span context ({0, 0} outside any span).
SpanContext current_span_context() noexcept;

/// RAII: installs a captured span context as the calling thread's current
/// one and restores the previous context on destruction. Used by
/// util::ThreadPool workers so task spans parent to the submitting span.
class SpanContextScope {
 public:
  explicit SpanContextScope(SpanContext ctx) noexcept;
  ~SpanContextScope();
  SpanContextScope(const SpanContextScope&) = delete;
  SpanContextScope& operator=(const SpanContextScope&) = delete;

 private:
  SpanContext saved_;
};

class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Monotonic nanoseconds since this recorder was constructed.
  std::uint64_t now_ns() const noexcept;

  /// Appends one finished span to the calling thread's buffer. Buffers are
  /// capped at kMaxEventsPerThread; overflow increments the dropped count
  /// instead of recording (exported as the trace.dropped_events counter,
  /// with a one-time stderr warning when a cap is first hit).
  void record(TraceEvent event);

  /// All recorded spans, merged and sorted by (start_ns, thread, span_id).
  std::vector<TraceEvent> snapshot() const;
  /// Spans discarded due to the per-thread cap, summed over threads.
  std::uint64_t dropped_events() const;
  void reset();

  static TraceRecorder& global();

  static constexpr std::size_t kMaxEventsPerThread = 1 << 16;

 private:
  struct Shard;
  Shard& local_shard();

  const std::uint64_t id_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// RAII span: construction assigns the span id and stamps the start,
/// destruction records the event into TraceRecorder::global(). Inert when
/// metrics are disabled at construction time — the disabled path performs
/// no allocation and stamps no clocks (BM_ScopedSpanDisabled tracks it at
/// ~1 ns). Spans nest; parent/depth come from the thread's SpanContext.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// This span's process-unique id (0 when inert).
  std::uint64_t span_id() const noexcept { return span_id_; }

 private:
  bool active_;
  bool mem_ = false;
  std::string name_;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  std::uint32_t depth_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t alloc_count0_ = 0;
  std::uint64_t alloc_bytes0_ = 0;
  SpanContext saved_;
};

// ---------------------------------------------------------------------------
// Chrome trace-event export (chrome://tracing, Perfetto).

/// Serializes spans into the Chrome trace-event document
///   {"schema": "appscope.trace/1", "displayTimeUnit": "ms",
///    "traceEvents": [{"ph": "X", "name", "ts", "dur", "pid", "tid",
///                     "args": {"span_id", "parent_id", "depth", ...}}, ...],
///    "dropped_events": N}
/// Timestamps are microseconds (fractional, from the recorder's ns clock).
/// Output is byte-stable for a given event list: keys sort via util::Json
/// and events sort by (start_ns, thread, span_id).
Json trace_to_chrome_json(const std::vector<TraceEvent>& events,
                          std::uint64_t dropped_events);

/// Snapshot the global recorder and write the Chrome trace document to
/// `path`. Throws InputError if the file cannot be written.
void write_trace_json(const std::string& path);

/// Resolves the trace output path: `flag_path` (from --trace=PATH) if
/// non-empty, else the APPSCOPE_TRACE environment variable, else "".
std::string trace_output_path(const std::string& flag_path = "");

/// If trace_output_path(flag_path) is non-empty: turns the metrics gate on
/// (spans record only while it is on) and registers an idempotent atexit
/// hook that writes the Chrome trace document there. Returns the resolved
/// path ("" means tracing stays off). The bench binaries and paper_report
/// call this so `--trace=trace.json` / APPSCOPE_TRACE=trace.json always
/// leave a loadable trace behind.
std::string enable_trace_export(const std::string& flag_path = "");

}  // namespace appscope::util
