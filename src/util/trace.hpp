// appscope/util/trace.hpp
//
// Lightweight span tracing for the pipeline: ScopedSpan records one named
// interval (wall-clock start + duration + nesting depth) into a per-thread
// buffer of the process-wide TraceRecorder; the merged, time-ordered span
// list is exported into metrics.json ("spans") by util/metrics.hpp.
//
// Same gating contract as the metrics registry: spans record only while
// MetricsRegistry::enabled() is true, and recording never feeds back into
// any analysis result.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace appscope::util {

struct TraceEvent {
  std::string name;
  /// Recorder-assigned dense thread index (0 = first recording thread).
  std::uint32_t thread = 0;
  /// Nesting depth of the span on its thread (0 = outermost).
  std::uint32_t depth = 0;
  /// Start offset since the recorder's epoch, and span length.
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Monotonic nanoseconds since this recorder was constructed.
  std::uint64_t now_ns() const noexcept;

  /// Appends one finished span to the calling thread's buffer. Buffers are
  /// capped at kMaxEventsPerThread; overflow increments the dropped count
  /// instead of recording (exported so caps are never silent).
  void record(std::string name, std::uint64_t start_ns,
              std::uint64_t duration_ns, std::uint32_t depth);

  /// All recorded spans, merged and sorted by (start_ns, thread, depth).
  std::vector<TraceEvent> snapshot() const;
  /// Spans discarded due to the per-thread cap, summed over threads.
  std::uint64_t dropped_events() const;
  void reset();

  static TraceRecorder& global();

  static constexpr std::size_t kMaxEventsPerThread = 1 << 16;

 private:
  struct Shard;
  Shard& local_shard();

  const std::uint64_t id_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// RAII span: construction stamps the start, destruction records the event
/// into TraceRecorder::global(). Inert when metrics are disabled at
/// construction time. Spans nest; depth is tracked per thread.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
  std::string name_;
  std::uint32_t depth_ = 0;
  std::uint64_t start_ns_ = 0;
};

}  // namespace appscope::util
