// appscope/util/trace_analysis.hpp
//
// Offline analysis of a recorded span list (util/trace.hpp): per-name
// aggregates (count, total, self time, p50/p99) and the critical path of a
// run, computed from the span DAG that parent_id links form across thread
// boundaries. "Self time" is a span's duration minus the union of its
// children's intervals — children that ran in parallel are counted once.
//
// The critical path walks the DAG backwards from the root span's end: at
// every point it descends into the child that finishes last, and attributes
// the gaps no child covers to the parent itself. The resulting per-name
// attribution partitions the root's wall time exactly, so it answers "which
// serial stages bound this run" — the ROADMAP question behind every
// parallelization PR.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/trace.hpp"

namespace appscope::util {

/// Aggregates over every span sharing one name.
struct SpanNameStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  // summed durations
  std::uint64_t self_ns = 0;   // summed durations minus child-interval union
  std::uint64_t p50_ns = 0;    // nearest-rank percentiles of the durations
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
};

/// One name's attribution on the critical path.
struct CriticalPathEntry {
  std::string name;
  std::uint64_t count = 0;    // spans of this name the path passed through
  std::uint64_t self_ns = 0;  // wall time the path attributes to this name
};

struct TraceSummary {
  /// Every span name, sorted by self time (descending).
  std::vector<SpanNameStats> by_name;
  /// Critical-path attribution, sorted by attributed time (descending).
  /// Empty when no root span was found. The entries partition the root's
  /// duration: their self_ns sum to critical_path_ns.
  std::vector<CriticalPathEntry> critical_path;
  std::string root_name;
  std::uint64_t root_duration_ns = 0;
  std::uint64_t critical_path_ns = 0;
  std::size_t span_count = 0;
};

/// Builds the summary. `root_name` selects the critical-path root (the
/// longest span with that name); when empty, the longest parentless span is
/// used. Spans whose parent_id does not resolve (e.g. the parent was
/// dropped at the buffer cap) are treated as roots for self-time purposes.
TraceSummary summarize_trace(const std::vector<TraceEvent>& events,
                             std::string_view root_name = {});

/// Renders the summary as two util::TextTable tables (top spans by self
/// time, then the critical path); `top` caps the by-name table's rows.
void print_trace_summary(const TraceSummary& summary, std::ostream& out,
                         std::size_t top = 20);

}  // namespace appscope::util
