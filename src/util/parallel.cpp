#include "util/parallel.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <thread>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace appscope::util {

namespace {
/// True on threads that belong to some pool; nested run() calls from a
/// worker execute inline instead of re-entering the (possibly busy) pool.
thread_local bool t_inside_pool_worker = false;
}  // namespace

/// One run() invocation. Lives on the caller's stack; workers claim task
/// indices via the atomic cursor and record failures under the pool mutex.
struct ThreadPool::Batch {
  const std::function<void(std::size_t)>* task = nullptr;
  std::size_t count = 0;
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  /// Observability (sampled only when metrics are enabled at submit time):
  /// summed per-participant busy nanoseconds, for batch utilization, plus
  /// the submitting thread's span context — workers restore it so their
  /// "pool.task" spans (and any spans the tasks open) parent to the
  /// submitting "pool.batch" span instead of being orphaned roots.
  bool metrics = false;
  SpanContext span_ctx;
  std::atomic<std::uint64_t> busy_ns{0};
};

class ThreadPool::Impl {
 public:
  explicit Impl(std::size_t threads) { start(threads); }

  ~Impl() { stop(); }

  std::size_t thread_count() const noexcept { return thread_count_; }

  void resize(std::size_t threads) {
    const std::lock_guard<std::mutex> admin(run_mutex_);
    stop();
    start(threads);
  }

  void run(std::size_t count, const std::function<void(std::size_t)>& task) {
    if (count == 0) return;
    const bool metrics = MetricsRegistry::enabled();
    if (count == 1 || thread_count_ <= 1 || t_inside_pool_worker) {
      // Inline path with the same semantics as the pooled one: every task
      // runs, the lowest-index failure is rethrown.
      if (metrics) {
        MetricsRegistry::global().add("pool.inline_tasks", count);
      }
      std::exception_ptr error;
      for (std::size_t i = 0; i < count; ++i) {
        try {
          task(i);
        } catch (...) {
          if (!error) error = std::current_exception();
        }
      }
      if (error) std::rethrow_exception(error);
      return;
    }

    const std::lock_guard<std::mutex> admin(run_mutex_);
    // The batch span covers dispatch, the caller's own task work, and the
    // drain wait; every participant's "pool.task" span nests under it via
    // the captured context.
    std::optional<ScopedSpan> batch_span;
    if (metrics) batch_span.emplace("pool.batch");
    Batch batch;
    batch.task = &task;
    batch.count = count;
    batch.metrics = metrics;
    batch.span_ctx = current_span_context();
    const auto t0 = metrics ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point{};
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      current_ = &batch;
      ++batch_seq_;
    }
    work_available_.notify_all();

    // The calling thread participates. It is flagged like a worker while it
    // does: a task that submits another batch to this pool would otherwise
    // self-deadlock on run_mutex_ — nested batches run inline instead,
    // exactly as they do on pool workers.
    const bool was_inside = t_inside_pool_worker;
    t_inside_pool_worker = true;
    work_on(batch);
    t_inside_pool_worker = was_inside;

    std::unique_lock<std::mutex> lock(mutex_);
    current_ = nullptr;  // late workers must not enter the drained batch
    batch_done_.wait(lock, [this] { return workers_inside_ == 0; });
    lock.unlock();
    if (metrics) {
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      MetricsRegistry& reg = MetricsRegistry::global();
      reg.add("pool.batches");
      reg.add("pool.tasks", count);
      reg.gauge("pool.threads", static_cast<double>(thread_count_));
      // Queue depth at submission: how many tasks entered the batch queue.
      reg.observe("pool.batch.tasks", static_cast<double>(count));
      reg.observe("pool.batch.wall_seconds", wall);
      if (wall > 0.0) {
        // Fraction of the pool's capacity (threads x wall) actually spent
        // executing tasks during this batch.
        const double busy =
            static_cast<double>(batch.busy_ns.load(std::memory_order_relaxed)) *
            1e-9;
        reg.observe("pool.batch.utilization",
                    busy / (wall * static_cast<double>(thread_count_)));
      }
    }
    if (batch.error) std::rethrow_exception(batch.error);
  }

 private:
  void start(std::size_t threads) {
    thread_count_ = threads == 0 ? 1 : threads;
    stop_ = false;
    workers_.reserve(thread_count_ - 1);
    for (std::size_t i = 0; i + 1 < thread_count_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void stop() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_available_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
  }

  void work_on(Batch& batch) {
    // Claim the first task before opening any span so participants that
    // arrive after the batch drained record nothing.
    std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) return;
    // Restore the submitting thread's span context (no-op on the caller)
    // and cover this participant's share of the batch with one task span.
    std::optional<SpanContextScope> ctx;
    std::optional<ScopedSpan> task_span;
    if (batch.metrics) {
      ctx.emplace(batch.span_ctx);
      task_span.emplace("pool.task");
    }
    const auto t0 = batch.metrics ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
    std::size_t executed = 0;
    for (;;) {
      ++executed;
      try {
        (*batch.task)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (i < batch.error_index) {
          batch.error_index = i;
          batch.error = std::current_exception();
        }
      }
      i = batch.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch.count) break;
    }
    if (batch.metrics && executed > 0) {
      const auto busy = std::chrono::steady_clock::now() - t0;
      batch.busy_ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(busy)
                  .count()),
          std::memory_order_relaxed);
      MetricsRegistry& reg = MetricsRegistry::global();
      reg.add("pool.worker_tasks", executed);
      reg.observe("pool.worker.busy_seconds",
                  std::chrono::duration<double>(busy).count());
    }
  }

  void worker_loop() {
    t_inside_pool_worker = true;
    std::uint64_t last_seq = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      work_available_.wait(lock, [&] {
        return stop_ || (current_ != nullptr && batch_seq_ != last_seq);
      });
      if (stop_) return;
      Batch& batch = *current_;
      last_seq = batch_seq_;
      ++workers_inside_;
      lock.unlock();
      work_on(batch);
      lock.lock();
      --workers_inside_;
      if (workers_inside_ == 0) batch_done_.notify_all();
    }
  }

  /// Serializes run()/resize() callers; one batch is in flight at a time.
  std::mutex run_mutex_;

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  std::vector<std::thread> workers_;
  std::size_t thread_count_ = 1;
  bool stop_ = false;
  Batch* current_ = nullptr;
  std::uint64_t batch_seq_ = 0;
  std::size_t workers_inside_ = 0;
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl(threads)) {}

ThreadPool::~ThreadPool() { delete impl_; }

std::size_t ThreadPool::thread_count() const noexcept {
  return impl_->thread_count();
}

void ThreadPool::run(std::size_t task_count,
                     const std::function<void(std::size_t)>& task) {
  impl_->run(task_count, task);
}

void ThreadPool::resize(std::size_t threads) { impl_->resize(threads); }

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  global().resize(threads == 0 ? default_thread_count() : threads);
}

std::size_t ThreadPool::global_thread_count() {
  return global().thread_count();
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("APPSCOPE_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace appscope::util
