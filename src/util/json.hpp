// appscope/util/json.hpp
//
// Minimal JSON value type: parse, build, dump. Exists so the observability
// layer (util/metrics.hpp) can emit machine-readable metrics.json files and
// round-trip them in tests without an external dependency. Objects keep
// their keys sorted (std::map), so dumps are byte-stable for a given value —
// a property the metrics exporter relies on for diffable CI artifacts.
//
// Scope: the JSON subset the repo needs. Numbers are stored as int64 when
// the text is integral and fits, double otherwise; no surrogate-pair \u
// decoding (escapes outside the BMP parse but re-encode as-is).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace appscope::util {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(std::int64_t i) : value_(i) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(std::uint64_t u);
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  /// Parses one JSON document (throws InputError on malformed input or
  /// trailing garbage).
  static Json parse(std::string_view text);

  /// Serializes the value. indent < 0 gives the compact one-line form;
  /// indent >= 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  bool is_number() const noexcept {
    return std::holds_alternative<double>(value_) ||
           std::holds_alternative<std::int64_t>(value_);
  }
  /// True when the number is stored integrally (parsed without '.'/'e').
  bool is_integer() const noexcept {
    return std::holds_alternative<std::int64_t>(value_);
  }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(value_); }
  bool is_array() const noexcept { return std::holds_alternative<Array>(value_); }
  bool is_object() const noexcept { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; throw PreconditionError on kind mismatch. as_double
  /// accepts both number representations.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object lookup; requires the value to be an object holding the key.
  const Json& at(std::string_view key) const;
  bool contains(std::string_view key) const;
  /// Array element; requires the value to be an array and i in range.
  const Json& at(std::size_t i) const;

  bool operator==(const Json& other) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::int64_t, std::string, Array,
               Object>
      value_;
};

}  // namespace appscope::util
