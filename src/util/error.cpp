#include "util/error.hpp"

#include <sstream>

namespace appscope::util::detail {

namespace {
std::string format(std::string_view kind, std::string_view expr,
                   std::string_view file, int line, std::string_view msg) {
  std::ostringstream oss;
  oss << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) oss << " — " << msg;
  return oss.str();
}
}  // namespace

void throw_precondition(std::string_view expr, std::string_view file, int line,
                        std::string_view msg) {
  throw PreconditionError(format("precondition", expr, file, line, msg));
}

void throw_invariant(std::string_view expr, std::string_view file, int line,
                     std::string_view msg) {
  throw InvariantError(format("invariant", expr, file, line, msg));
}

}  // namespace appscope::util::detail
