// appscope/util/error.hpp
//
// Error-handling primitives for the appscope library.
//
// Policy (per C++ Core Guidelines E.2/E.3): precondition violations and
// unrecoverable logic errors throw exceptions derived from appscope::util::Error.
// Hot inner loops use APPSCOPE_DCHECK, which compiles away in NDEBUG builds.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace appscope::util {

/// Base class for all appscope exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is found broken (a bug in appscope).
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

/// Thrown on malformed external input (files, CSV, CLI arguments).
class InputError : public Error {
 public:
  explicit InputError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_precondition(std::string_view expr, std::string_view file,
                                     int line, std::string_view msg);
[[noreturn]] void throw_invariant(std::string_view expr, std::string_view file,
                                  int line, std::string_view msg);
}  // namespace detail

}  // namespace appscope::util

/// Validate a documented precondition; throws PreconditionError when false.
#define APPSCOPE_REQUIRE(cond, msg)                                             \
  do {                                                                          \
    if (!(cond)) {                                                              \
      ::appscope::util::detail::throw_precondition(#cond, __FILE__, __LINE__,   \
                                                   (msg));                      \
    }                                                                           \
  } while (false)

/// Validate an internal invariant; throws InvariantError when false.
#define APPSCOPE_CHECK(cond, msg)                                               \
  do {                                                                          \
    if (!(cond)) {                                                              \
      ::appscope::util::detail::throw_invariant(#cond, __FILE__, __LINE__,      \
                                                (msg));                         \
    }                                                                           \
  } while (false)

/// Debug-only invariant check for hot paths; no-op in NDEBUG builds.
#ifdef NDEBUG
#define APPSCOPE_DCHECK(cond, msg) ((void)0)
#else
#define APPSCOPE_DCHECK(cond, msg) APPSCOPE_CHECK(cond, msg)
#endif
