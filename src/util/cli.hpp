// appscope/util/cli.hpp
//
// Minimal command-line option parser shared by the bench and example
// binaries: supports "--flag", "--key=value" and positional arguments, with
// typed accessors and an auto-generated usage string.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace appscope::util {

class CliArgs {
 public:
  /// Parses argv; never throws (malformed tokens become positionals).
  CliArgs(int argc, char** argv);

  const std::string& program() const noexcept { return program_; }

  /// True if "--name" or "--name=..." was given.
  bool has(std::string_view name) const noexcept;

  /// Value of "--name=value", if present.
  std::optional<std::string> value(std::string_view name) const noexcept;

  /// Typed accessors with defaults; throw InputError on malformed values.
  std::string get_string(std::string_view name, std::string default_value) const;
  std::int64_t get_int(std::string_view name, std::int64_t default_value) const;
  double get_double(std::string_view name, double default_value) const;

  const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

 private:
  struct Option {
    std::string name;
    std::optional<std::string> value;
  };

  std::string program_;
  std::vector<Option> options_;
  std::vector<std::string> positionals_;
};

}  // namespace appscope::util
