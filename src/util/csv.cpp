#include "util/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace appscope::util {

CsvWriter::CsvWriter(std::ostream& out, char sep) : out_(out), sep_(sep) {}

std::string CsvWriter::escape(std::string_view field) const {
  const bool needs_quoting =
      field.find(sep_) != std::string_view::npos ||
      field.find('"') != std::string_view::npos ||
      field.find('\n') != std::string_view::npos ||
      field.find('\r') != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << sep_;
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::write_numeric_row(const std::vector<double>& values, int digits) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (const double v : values) fields.push_back(format_double(v, digits));
  write_row(fields);
}

std::vector<std::vector<std::string>> CsvReader::parse(std::string_view text,
                                                       char sep) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        if (c == sep) {
          end_field();
        } else {
          field.push_back(c);
          field_started = true;
        }
    }
  }
  if (in_quotes) throw InputError("CSV: unbalanced quote at end of input");
  if (field_started || !row.empty() || !field.empty()) end_row();
  return rows;
}

std::vector<std::vector<std::string>> CsvReader::parse_file(
    const std::string& path, char sep) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw InputError("CSV: cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), sep);
}

}  // namespace appscope::util
