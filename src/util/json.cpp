#include "util/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/error.hpp"

namespace appscope::util {

Json::Json(std::uint64_t u) {
  if (u <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    value_ = static_cast<std::int64_t>(u);
  } else {
    value_ = static_cast<double>(u);
  }
}

bool Json::as_bool() const {
  APPSCOPE_REQUIRE(is_bool(), "Json::as_bool: not a bool");
  return std::get<bool>(value_);
}

double Json::as_double() const {
  APPSCOPE_REQUIRE(is_number(), "Json::as_double: not a number");
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  return std::get<double>(value_);
}

std::int64_t Json::as_int() const {
  APPSCOPE_REQUIRE(is_number(), "Json::as_int: not a number");
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  const double d = std::get<double>(value_);
  APPSCOPE_REQUIRE(
      d >= -9.223372036854776e18 && d <= 9.223372036854775e18,
      "Json::as_int: double out of int64 range");
  return static_cast<std::int64_t>(d);
}

const std::string& Json::as_string() const {
  APPSCOPE_REQUIRE(is_string(), "Json::as_string: not a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  APPSCOPE_REQUIRE(is_array(), "Json::as_array: not an array");
  return std::get<Array>(value_);
}

Json::Array& Json::as_array() {
  APPSCOPE_REQUIRE(is_array(), "Json::as_array: not an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  APPSCOPE_REQUIRE(is_object(), "Json::as_object: not an object");
  return std::get<Object>(value_);
}

Json::Object& Json::as_object() {
  APPSCOPE_REQUIRE(is_object(), "Json::as_object: not an object");
  return std::get<Object>(value_);
}

const Json& Json::at(std::string_view key) const {
  const Object& obj = as_object();
  const auto it = obj.find(std::string(key));
  APPSCOPE_REQUIRE(it != obj.end(), "Json::at: missing key: " + std::string(key));
  return it->second;
}

bool Json::contains(std::string_view key) const {
  return is_object() && as_object().count(std::string(key)) > 0;
}

const Json& Json::at(std::size_t i) const {
  const Array& arr = as_array();
  APPSCOPE_REQUIRE(i < arr.size(), "Json::at: index out of range");
  return arr[i];
}

bool Json::operator==(const Json& other) const { return value_ == other.value_; }

// ---------------------------------------------------------------------------
// Parser: recursive descent over a string_view cursor.

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw InputError("Json::parse: " + why + " at offset " +
                     std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Json(nullptr);
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return Json(std::move(obj));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return Json(std::move(arr));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // UTF-8 encode the code point (BMP only; surrogates pass through
          // as-is, which is lossy but never crashes on valid input).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Json(value);
      }
      // Out of int64 range: fall through to double.
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf.data();
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_double(double d, std::string& out) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; emit null (the conventional lossy mapping).
    out += "null";
    return;
  }
  std::array<char, 32> buf{};
  const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), d);
  APPSCOPE_CHECK(ec == std::errc(), "Json::dump: number formatting failed");
  out.append(buf.data(), ptr);
}

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

namespace {

void dump_value(const Json& v, int indent, int depth, std::string& out);

void newline_indent(int indent, int depth, std::string& out) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

void dump_value(const Json& v, int indent, int depth, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_string()) {
    dump_string(v.as_string(), out);
  } else if (v.is_number()) {
    // Integrally-stored numbers dump without a decimal point.
    if (v.is_integer()) {
      out += std::to_string(v.as_int());
    } else {
      dump_double(v.as_double(), out);
    }
  } else if (v.is_array()) {
    const Json::Array& arr = v.as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    bool first = true;
    for (const Json& item : arr) {
      if (!first) out.push_back(',');
      first = false;
      newline_indent(indent, depth + 1, out);
      dump_value(item, indent, depth + 1, out);
    }
    newline_indent(indent, depth, out);
    out.push_back(']');
  } else {
    const Json::Object& obj = v.as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, item] : obj) {
      if (!first) out.push_back(',');
      first = false;
      newline_indent(indent, depth + 1, out);
      dump_string(key, out);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      dump_value(item, indent, depth + 1, out);
    }
    newline_indent(indent, depth, out);
    out.push_back('}');
  }
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_value(*this, indent, 0, out);
  return out;
}

}  // namespace appscope::util
