#include "util/trace_analysis.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <ostream>
#include <unordered_map>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace appscope::util {

namespace {

std::uint64_t span_end(const TraceEvent& e) noexcept {
  return e.start_ns + e.duration_ns;
}

/// Total length of the union of the children's intervals, clamped to the
/// parent's interval (children may overlap when they ran in parallel).
std::uint64_t child_union_ns(const TraceEvent& parent,
                             const std::vector<const TraceEvent*>& children) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals;
  intervals.reserve(children.size());
  const std::uint64_t lo = parent.start_ns;
  const std::uint64_t hi = span_end(parent);
  for (const TraceEvent* c : children) {
    const std::uint64_t s = std::max(c->start_ns, lo);
    const std::uint64_t e = std::min(span_end(*c), hi);
    if (e > s) intervals.emplace_back(s, e);
  }
  std::sort(intervals.begin(), intervals.end());
  std::uint64_t covered = 0;
  std::uint64_t cur_lo = 0;
  std::uint64_t cur_hi = 0;
  bool open = false;
  for (const auto& [s, e] : intervals) {
    if (!open || s > cur_hi) {
      if (open) covered += cur_hi - cur_lo;
      cur_lo = s;
      cur_hi = e;
      open = true;
    } else {
      cur_hi = std::max(cur_hi, e);
    }
  }
  if (open) covered += cur_hi - cur_lo;
  return covered;
}

std::uint64_t nearest_rank(const std::vector<std::uint64_t>& sorted,
                           double quantile) {
  if (sorted.empty()) return 0;
  const double rank = quantile * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(rank);
  if (static_cast<double>(idx) < rank) ++idx;  // ceil
  if (idx == 0) idx = 1;
  if (idx > sorted.size()) idx = sorted.size();
  return sorted[idx - 1];
}

std::string ms(std::uint64_t ns) {
  return format_double(static_cast<double>(ns) * 1e-6, 3);
}

}  // namespace

TraceSummary summarize_trace(const std::vector<TraceEvent>& events,
                             std::string_view root_name) {
  TraceSummary summary;
  summary.span_count = events.size();
  if (events.empty()) return summary;

  std::unordered_map<std::uint64_t, std::size_t> by_id;
  by_id.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    by_id.emplace(events[i].span_id, i);
  }
  // children[i] = indices of the spans whose parent resolves to span i.
  std::vector<std::vector<std::size_t>> children(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::uint64_t parent = events[i].parent_id;
    if (parent == 0) continue;
    const auto it = by_id.find(parent);
    if (it != by_id.end() && it->second != i) children[it->second].push_back(i);
  }

  // Per-name aggregates.
  struct NameAcc {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
    std::vector<std::uint64_t> durations;
  };
  std::map<std::string, NameAcc> names;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::vector<const TraceEvent*> kids;
    kids.reserve(children[i].size());
    for (const std::size_t c : children[i]) kids.push_back(&events[c]);
    const std::uint64_t covered = child_union_ns(e, kids);
    NameAcc& acc = names[e.name];
    ++acc.count;
    acc.total_ns += e.duration_ns;
    acc.self_ns += e.duration_ns - std::min(covered, e.duration_ns);
    acc.durations.push_back(e.duration_ns);
  }
  for (auto& [name, acc] : names) {
    std::sort(acc.durations.begin(), acc.durations.end());
    SpanNameStats stats;
    stats.name = name;
    stats.count = acc.count;
    stats.total_ns = acc.total_ns;
    stats.self_ns = acc.self_ns;
    stats.p50_ns = nearest_rank(acc.durations, 0.50);
    stats.p99_ns = nearest_rank(acc.durations, 0.99);
    stats.max_ns = acc.durations.back();
    summary.by_name.push_back(std::move(stats));
  }
  std::sort(summary.by_name.begin(), summary.by_name.end(),
            [](const SpanNameStats& a, const SpanNameStats& b) {
              return std::tie(b.self_ns, a.name) < std::tie(a.self_ns, b.name);
            });

  // Root: longest span with the requested name, else longest parentless
  // span (a parent that never resolved counts as parentless).
  std::size_t root = events.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    const bool eligible =
        root_name.empty()
            ? (e.parent_id == 0 || by_id.find(e.parent_id) == by_id.end())
            : e.name == root_name;
    if (!eligible) continue;
    if (root == events.size() || e.duration_ns > events[root].duration_ns) {
      root = i;
    }
  }
  if (root == events.size()) return summary;
  summary.root_name = events[root].name;
  summary.root_duration_ns = events[root].duration_ns;

  // Critical path: from the span's end, repeatedly descend into the child
  // that finishes last; gaps no child covers belong to the span itself.
  std::map<std::string, CriticalPathEntry> path;
  const std::function<void(std::size_t)> walk = [&](std::size_t idx) {
    const TraceEvent& span = events[idx];
    const std::uint64_t lo = span.start_ns;
    CriticalPathEntry& entry = path[span.name];
    if (entry.name.empty()) entry.name = span.name;
    ++entry.count;

    // Children clamped to the span, sorted by end time (ascending).
    std::vector<std::size_t> kids = children[idx];
    std::sort(kids.begin(), kids.end(), [&](std::size_t a, std::size_t b) {
      return std::min(span_end(events[a]), span_end(span)) <
             std::min(span_end(events[b]), span_end(span));
    });
    std::uint64_t t = span_end(span);
    for (std::size_t k = kids.size(); k-- > 0;) {
      const TraceEvent& child = events[kids[k]];
      const std::uint64_t c_end = std::min(span_end(child), span_end(span));
      const std::uint64_t c_start = std::max(child.start_ns, lo);
      if (c_end > t) continue;  // overlapped by an already-walked child
      if (c_end <= lo || c_start >= c_end) continue;
      entry.self_ns += t - c_end;  // gap before the next child closes
      walk(kids[k]);
      t = c_start;
      if (t <= lo) break;
    }
    if (t > lo) path[span.name].self_ns += t - lo;
  };
  walk(root);

  summary.critical_path.reserve(path.size());
  for (auto& [name, entry] : path) {
    summary.critical_path_ns += entry.self_ns;
    summary.critical_path.push_back(std::move(entry));
  }
  std::sort(summary.critical_path.begin(), summary.critical_path.end(),
            [](const CriticalPathEntry& a, const CriticalPathEntry& b) {
              return std::tie(b.self_ns, a.name) < std::tie(a.self_ns, b.name);
            });
  return summary;
}

void print_trace_summary(const TraceSummary& summary, std::ostream& out,
                         std::size_t top) {
  out << rule("trace summary") << "\n";
  out << summary.span_count << " spans, " << summary.by_name.size()
      << " distinct names\n\n";

  TextTable spans({"span", "count", "total ms", "self ms", "p50 ms", "p99 ms"});
  for (const SpanNameStats& s : summary.by_name) {
    if (spans.row_count() >= top) break;
    spans.add_row({s.name, std::to_string(s.count), ms(s.total_ns),
                   ms(s.self_ns), ms(s.p50_ns), ms(s.p99_ns)});
  }
  spans.render(out);

  if (summary.critical_path.empty()) {
    out << "\nno root span found; critical path unavailable\n";
    return;
  }
  const double coverage =
      summary.root_duration_ns == 0
          ? 0.0
          : 100.0 * static_cast<double>(summary.critical_path_ns) /
                static_cast<double>(summary.root_duration_ns);
  out << "\ncritical path of '" << summary.root_name << "' ("
      << ms(summary.root_duration_ns) << " ms wall, "
      << format_double(coverage, 1) << "% attributed)\n";
  TextTable path({"span", "count", "path ms", "share"});
  for (const CriticalPathEntry& e : summary.critical_path) {
    const double share =
        summary.critical_path_ns == 0
            ? 0.0
            : 100.0 * static_cast<double>(e.self_ns) /
                  static_cast<double>(summary.critical_path_ns);
    path.add_row({e.name, std::to_string(e.count), ms(e.self_ns),
                  format_double(share, 1) + "%"});
  }
  path.render(out);
}

}  // namespace appscope::util
