// appscope/util/parallel.hpp
//
// Deterministic thread-pool parallelism for the nationwide pipeline.
//
// The pool is a lazily-started, reusable singleton sized from the
// APPSCOPE_THREADS environment variable (falling back to
// hardware_concurrency). The helpers on top of it are built around one
// rule that every parallel stage in appscope follows:
//
//   the work decomposition (chunk boundaries) depends only on the range
//   and the chunk grain — never on the thread count — and any reduction
//   combines per-chunk partials in chunk-index order.
//
// With independent chunks and an ordered merge, running at 1, 2 or 64
// threads produces bitwise-identical results, so the seeded-reproducibility
// guarantee of util::Rng survives parallel execution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace appscope::util {

/// Reusable fixed-size worker pool. ThreadPool(n) targets n concurrent
/// threads: n - 1 background workers plus the calling thread, which
/// participates in every batch (ThreadPool(1) runs everything inline with
/// no background threads at all).
///
/// run() executes one batch at a time; concurrent run() calls from
/// different threads serialize. A run() issued from inside a pool task
/// executes inline on that worker, so nested parallelism cannot deadlock.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Target concurrency (background workers + the calling thread).
  std::size_t thread_count() const noexcept;

  /// Runs task(i) for every i in [0, task_count) and blocks until all
  /// complete. Tasks must be independent. If tasks throw, every task still
  /// runs and the exception thrown by the lowest task index is rethrown
  /// (a deterministic choice at any thread count).
  void run(std::size_t task_count, const std::function<void(std::size_t)>& task);

  /// Stops and re-spawns the workers with a new target concurrency.
  /// Must not race with run() calls from other threads.
  void resize(std::size_t threads);

  /// The process-wide pool, created on first use with default_thread_count().
  static ThreadPool& global();
  /// Resizes the global pool (0 restores default_thread_count()).
  static void set_global_threads(std::size_t threads);
  static std::size_t global_thread_count();

  /// APPSCOPE_THREADS if set to a positive integer, else
  /// std::thread::hardware_concurrency (at least 1).
  static std::size_t default_thread_count();

 private:
  struct Batch;
  class Impl;
  Impl* impl_;
};

/// Splits [begin, end) into consecutive chunks of `chunk` indices (the last
/// chunk may be short) and calls fn(chunk_begin, chunk_end) for each on the
/// global pool. Chunk boundaries depend only on (begin, end, chunk), so any
/// per-chunk deterministic work (e.g. a forked Rng stream per chunk) yields
/// identical results at every thread count.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t chunk,
                  Fn&& fn) {
  APPSCOPE_REQUIRE(chunk > 0, "parallel_for: chunk grain must be positive");
  APPSCOPE_REQUIRE(begin <= end, "parallel_for: begin must be <= end");
  if (begin == end) return;
  const std::size_t span = end - begin;
  const std::size_t chunks = (span + chunk - 1) / chunk;
  ThreadPool::global().run(chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = lo + chunk < end ? lo + chunk : end;
    fn(lo, hi);
  });
}

/// Ordered map/reduce over [begin, end): map(chunk_begin, chunk_end) -> T
/// runs on the pool; reduce(std::move(partial), chunk_index) is called for
/// chunk 0, 1, 2, ... strictly in order, one call at a time, from whichever
/// thread completed the chunk that unblocked the merge frontier. Partials
/// are merged (and freed) as soon as their turn arrives, so at most
/// O(threads) partials are typically alive. If map throws, the exception
/// propagates after the batch drains; chunks before the failed one may
/// already have been merged.
template <typename T, typename MapFn, typename ReduceFn>
void parallel_map_reduce(std::size_t begin, std::size_t end, std::size_t chunk,
                         MapFn&& map, ReduceFn&& reduce) {
  APPSCOPE_REQUIRE(chunk > 0, "parallel_map_reduce: chunk grain must be positive");
  APPSCOPE_REQUIRE(begin <= end, "parallel_map_reduce: begin must be <= end");
  if (begin == end) return;
  const std::size_t span = end - begin;
  const std::size_t chunks = (span + chunk - 1) / chunk;

  std::mutex merge_mutex;
  std::vector<std::optional<T>> ready(chunks);
  std::size_t next_merge = 0;

  ThreadPool::global().run(chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = lo + chunk < end ? lo + chunk : end;
    T partial = map(lo, hi);
    const std::lock_guard<std::mutex> lock(merge_mutex);
    ready[c].emplace(std::move(partial));
    while (next_merge < chunks && ready[next_merge].has_value()) {
      T merged = std::move(*ready[next_merge]);
      ready[next_merge].reset();
      reduce(std::move(merged), next_merge);
      ++next_merge;
    }
  });
}

}  // namespace appscope::util
