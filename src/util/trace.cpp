#include "util/trace.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <tuple>

#include "util/metrics.hpp"

namespace appscope::util {

namespace {

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local cache of (recorder id -> shard). Ids are never reused, so a
/// stale entry for a destroyed recorder can never be matched (and is never
/// dereferenced).
struct ShardRef {
  std::uint64_t recorder_id;
  void* shard;
};
thread_local std::vector<ShardRef> t_trace_shards;

/// Per-thread span nesting depth (ScopedSpan construction/destruction is
/// strictly stack-ordered per thread).
thread_local std::uint32_t t_span_depth = 0;

}  // namespace

struct TraceRecorder::Shard {
  std::mutex mutex;  // guards events/dropped against concurrent snapshot
  std::uint32_t thread_index = 0;
  std::deque<TraceEvent> events;
  std::uint64_t dropped = 0;
};

TraceRecorder::TraceRecorder()
    : id_(next_recorder_id()), epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

std::uint64_t TraceRecorder::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceRecorder::Shard& TraceRecorder::local_shard() {
  for (const ShardRef& ref : t_trace_shards) {
    if (ref.recorder_id == id_) return *static_cast<Shard*>(ref.shard);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  shard->thread_index = static_cast<std::uint32_t>(shards_.size() - 1);
  t_trace_shards.push_back({id_, shard});
  return *shard;
}

void TraceRecorder::record(std::string name, std::uint64_t start_ns,
                           std::uint64_t duration_ns, std::uint32_t depth) {
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.events.size() >= kMaxEventsPerThread) {
    ++shard.dropped;
    return;
  }
  TraceEvent event;
  event.name = std::move(name);
  event.thread = shard.thread_index;
  event.depth = depth;
  event.start_ns = start_ns;
  event.duration_ns = duration_ns;
  shard.events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    out.insert(out.end(), shard->events.begin(), shard->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tie(a.start_ns, a.thread, a.depth) <
                     std::tie(b.start_ns, b.thread, b.depth);
            });
  return out;
}

std::uint64_t TraceRecorder::dropped_events() const {
  std::uint64_t total = 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    total += shard->dropped;
  }
  return total;
}

void TraceRecorder::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    shard->events.clear();
    shard->dropped = 0;
  }
}

TraceRecorder& TraceRecorder::global() {
  // Intentionally immortal: pool workers and atexit exporters may record or
  // scrape during process teardown.
  static auto* recorder = new TraceRecorder();
  return *recorder;
}

ScopedSpan::ScopedSpan(std::string name)
    : active_(MetricsRegistry::enabled()), name_(std::move(name)) {
  if (!active_) return;
  depth_ = t_span_depth++;
  start_ns_ = TraceRecorder::global().now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --t_span_depth;
  const std::uint64_t end_ns = TraceRecorder::global().now_ns();
  TraceRecorder::global().record(std::move(name_), start_ns_,
                                 end_ns - start_ns_, depth_);
}

}  // namespace appscope::util
