#include "util/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <tuple>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/mem_stats.hpp"
#include "util/metrics.hpp"

namespace appscope::util {

namespace {

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t next_span_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local cache of (recorder id -> shard). Ids are never reused, so a
/// stale entry for a destroyed recorder can never be matched (and is never
/// dereferenced).
struct ShardRef {
  std::uint64_t recorder_id;
  void* shard;
};
thread_local std::vector<ShardRef> t_trace_shards;

/// The thread's position in the span DAG (ScopedSpan and SpanContextScope
/// save/restore it in strict stack order per thread).
thread_local SpanContext t_span_ctx;

/// One-time stderr warning when any per-thread buffer first overflows.
std::atomic<bool> g_drop_warned{false};

}  // namespace

SpanContext current_span_context() noexcept { return t_span_ctx; }

SpanContextScope::SpanContextScope(SpanContext ctx) noexcept
    : saved_(t_span_ctx) {
  t_span_ctx = ctx;
}

SpanContextScope::~SpanContextScope() { t_span_ctx = saved_; }

/// Cache-line aligned so concurrently-recording threads' shards never
/// share a line (the record fast path mutates events/dropped every span).
struct alignas(64) TraceRecorder::Shard {
  std::mutex mutex;  // guards events/dropped against concurrent snapshot
  std::uint32_t thread_index = 0;
  std::deque<TraceEvent> events;
  std::uint64_t dropped = 0;
};

TraceRecorder::TraceRecorder()
    : id_(next_recorder_id()), epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

std::uint64_t TraceRecorder::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceRecorder::Shard& TraceRecorder::local_shard() {
  for (const ShardRef& ref : t_trace_shards) {
    if (ref.recorder_id == id_) return *static_cast<Shard*>(ref.shard);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  shard->thread_index = static_cast<std::uint32_t>(shards_.size() - 1);
  t_trace_shards.push_back({id_, shard});
  return *shard;
}

void TraceRecorder::record(TraceEvent event) {
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.events.size() >= kMaxEventsPerThread) {
    ++shard.dropped;
    if (!g_drop_warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "appscope: trace buffer cap (%zu events/thread) hit; "
                   "further spans are dropped and counted in "
                   "trace.dropped_events\n",
                   kMaxEventsPerThread);
    }
    return;
  }
  event.thread = shard.thread_index;
  shard.events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    out.insert(out.end(), shard->events.begin(), shard->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tie(a.start_ns, a.thread, a.span_id) <
                     std::tie(b.start_ns, b.thread, b.span_id);
            });
  return out;
}

std::uint64_t TraceRecorder::dropped_events() const {
  std::uint64_t total = 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    total += shard->dropped;
  }
  return total;
}

void TraceRecorder::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    shard->events.clear();
    shard->dropped = 0;
  }
}

TraceRecorder& TraceRecorder::global() {
  // Intentionally immortal: pool workers and atexit exporters may record or
  // scrape during process teardown.
  static auto* recorder = new TraceRecorder();
  return *recorder;
}

ScopedSpan::ScopedSpan(std::string_view name)
    : active_(MetricsRegistry::enabled()) {
  if (!active_) return;  // zero-allocation, no clock stamp
  name_.assign(name);
  saved_ = t_span_ctx;
  span_id_ = next_span_id();
  parent_id_ = saved_.span_id;
  depth_ = saved_.depth;
  t_span_ctx = {span_id_, depth_ + 1};
  mem_ = mem_sampling_enabled();
  if (mem_) {
    const MemCounters mem = thread_mem_counters();
    alloc_count0_ = mem.alloc_count;
    alloc_bytes0_ = mem.alloc_bytes;
  }
  start_ns_ = TraceRecorder::global().now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const std::uint64_t end_ns = TraceRecorder::global().now_ns();
  TraceEvent event;
  if (mem_) {
    const MemCounters mem = thread_mem_counters();
    event.alloc_count = mem.alloc_count - alloc_count0_;
    event.alloc_bytes = mem.alloc_bytes - alloc_bytes0_;
    event.rss_peak_bytes = peak_rss_bytes();
  }
  event.name = std::move(name_);
  event.span_id = span_id_;
  event.parent_id = parent_id_;
  event.depth = depth_;
  event.start_ns = start_ns_;
  event.duration_ns = end_ns - start_ns_;
  t_span_ctx = saved_;
  TraceRecorder::global().record(std::move(event));
}

// ---------------------------------------------------------------------------
// Chrome trace-event export

Json trace_to_chrome_json(const std::vector<TraceEvent>& events,
                          std::uint64_t dropped_events) {
  Json::Array trace_events;
  trace_events.reserve(events.size());
  for (const TraceEvent& event : events) {
    Json::Object args;
    args.emplace("span_id", Json(event.span_id));
    args.emplace("parent_id", Json(event.parent_id));
    args.emplace("depth", Json(static_cast<std::uint64_t>(event.depth)));
    if (event.alloc_count > 0) args.emplace("alloc_count", Json(event.alloc_count));
    if (event.alloc_bytes > 0) args.emplace("alloc_bytes", Json(event.alloc_bytes));
    if (event.rss_peak_bytes > 0) {
      args.emplace("rss_peak_bytes", Json(event.rss_peak_bytes));
    }
    Json::Object entry;
    entry.emplace("name", Json(event.name));
    entry.emplace("cat", Json("appscope"));
    entry.emplace("ph", Json("X"));
    entry.emplace("pid", Json(std::uint64_t{0}));
    entry.emplace("tid", Json(static_cast<std::uint64_t>(event.thread)));
    // Chrome timestamps are microseconds; keep nanosecond resolution via a
    // fractional part (dumps byte-stably through std::to_chars).
    entry.emplace("ts", Json(static_cast<double>(event.start_ns) / 1000.0));
    entry.emplace("dur", Json(static_cast<double>(event.duration_ns) / 1000.0));
    entry.emplace("args", Json(std::move(args)));
    trace_events.emplace_back(std::move(entry));
  }
  Json::Object doc;
  doc.emplace("schema", Json("appscope.trace/1"));
  doc.emplace("displayTimeUnit", Json("ms"));
  doc.emplace("traceEvents", Json(std::move(trace_events)));
  doc.emplace("dropped_events", Json(dropped_events));
  return Json(std::move(doc));
}

void write_trace_json(const std::string& path) {
  const TraceRecorder& recorder = TraceRecorder::global();
  const Json doc =
      trace_to_chrome_json(recorder.snapshot(), recorder.dropped_events());
  std::ofstream file(path);
  APPSCOPE_REQUIRE(file.good(),
                   "write_trace_json: cannot open for writing: " + path);
  file << doc.dump(2) << '\n';
  file.close();
  APPSCOPE_REQUIRE(file.good(), "write_trace_json: write failed: " + path);
}

std::string trace_output_path(const std::string& flag_path) {
  if (!flag_path.empty()) return flag_path;
  if (const char* env = std::getenv("APPSCOPE_TRACE")) {
    if (*env != '\0') return env;
  }
  return "";
}

namespace {
/// Path captured by enable_trace_export for its atexit hook. Writes happen
/// once at process exit; later enable calls may retarget the path.
std::string& trace_exit_path() {
  static auto* path = new std::string();
  return *path;
}
}  // namespace

std::string enable_trace_export(const std::string& flag_path) {
  const std::string path = trace_output_path(flag_path);
  if (path.empty()) return path;
  MetricsRegistry::set_enabled(true);
  trace_exit_path() = path;
  static const bool registered = [] {
    std::atexit([] {
      const std::string& target = trace_exit_path();
      if (target.empty()) return;
      try {
        write_trace_json(target);
      } catch (...) {
        // Exporting observability data must never turn a successful run
        // into a failing exit.
      }
    });
    return true;
  }();
  (void)registered;
  return path;
}

}  // namespace appscope::util
