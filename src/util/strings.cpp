#include "util/strings.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace appscope::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_double(double value, int digits) {
  std::array<char, 64> buf{};
  const int written =
      std::snprintf(buf.data(), buf.size(), "%.*f", digits, value);
  return std::string(buf.data(), static_cast<std::size_t>(written));
}

std::string format_double_roundtrip(double value) {
  std::array<char, 64> buf{};
  const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), value);
  APPSCOPE_CHECK(ec == std::errc{}, "format_double_roundtrip: buffer too small");
  return std::string(buf.data(), static_cast<std::size_t>(ptr - buf.data()));
}

std::string format_percent(double fraction, int digits) {
  return format_double(fraction * 100.0, digits) + "%";
}

std::string format_bytes(double bytes) {
  static constexpr std::array<const char*, 6> kUnits = {"B",  "KB", "MB",
                                                        "GB", "TB", "PB"};
  double value = bytes;
  std::size_t unit = 0;
  while (std::abs(value) >= 1000.0 && unit + 1 < kUnits.size()) {
    value /= 1000.0;
    ++unit;
  }
  return format_double(value, value < 10 ? 2 : 1) + " " + kUnits[unit];
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string out;
  if (text.size() < width) out.append(width - text.size(), ' ');
  out.append(text);
  return out;
}

double parse_double(std::string_view text) {
  const std::string_view t = trim(text);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size()) {
    throw InputError("malformed double: '" + std::string(text) + "'");
  }
  return value;
}

std::int64_t parse_int(std::string_view text) {
  const std::string_view t = trim(text);
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size()) {
    throw InputError("malformed integer: '" + std::string(text) + "'");
  }
  return value;
}

}  // namespace appscope::util
