// appscope/util/table.hpp
//
// Terminal rendering used by the figure-reproduction benches: aligned tables,
// horizontal bar charts, and sparklines, so each bench prints the same
// rows/series the paper's figure reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace appscope::util {

/// Column-aligned ASCII table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column padding and a separator under the header.
  void render(std::ostream& out) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders `value` in [0, max] as a fixed-width ASCII bar ("#####----").
std::string ascii_bar(double value, double max, std::size_t width = 40);

/// Renders a series as a one-line sparkline using 8 shade levels.
std::string sparkline(const std::vector<double>& values);

/// Multi-row ASCII line chart (rows = levels, columns = samples).
/// Used to print weekly time-series "figures" in the benches.
std::string ascii_chart(const std::vector<double>& values, std::size_t height = 8,
                        std::size_t max_width = 168);

/// Section header helper: "== title ==============".
std::string rule(const std::string& title, std::size_t width = 78);

}  // namespace appscope::util
