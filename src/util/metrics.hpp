// appscope/util/metrics.hpp
//
// Pipeline observability: a process-wide metrics registry with counters,
// gauges and histograms, plus the RAII StageTimer used by every pipeline
// stage (generator shards, DPI classification, k-Shape, peak detection,
// spatial/urbanization analyses, thread-pool batches).
//
// Performance model — lock-free fast path via per-thread shards:
//
//   * every recording thread owns a private shard; the name -> cell lookup
//     table of a shard is touched only by its owner, so lookups take no
//     lock at all;
//   * cell values are atomics, so a scrape (snapshot) can read them while
//     the owner keeps recording; a mutex is taken only when a thread first
//     touches a metric name (cell allocation) and during scrape iteration;
//   * snapshot() merges all shards into per-name totals.
//
// Determinism model: metrics are pure observation. Recording is gated by
// MetricsRegistry::enabled() (the APPSCOPE_METRICS environment variable or
// StudyOptions::metrics); with the gate off every instrument is an inert
// no-op, and with it on no analysis result changes — instrumented and
// uninstrumented runs stay bitwise identical
// (tests/core/test_metrics_determinism.cpp asserts this).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace appscope::util {

class Json;

/// Fixed power-of-two histogram layout: bucket i counts values in
/// [2^(i + kHistogramMinExp), 2^(i + 1 + kHistogramMinExp)), clamped at the
/// ends. With kHistogramMinExp = -20 the first bucket starts near 1 µs,
/// which suits wall-clock stage timings; any non-negative value lands in a
/// monotone bucket regardless of unit.
inline constexpr int kHistogramMinExp = -20;
inline constexpr std::size_t kHistogramBuckets = 40;

/// Returns the bucket index for a value (values <= 0 map to bucket 0).
std::size_t histogram_bucket(double value) noexcept;

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Point-in-time merge of every shard, keyed by metric name. std::map keeps
/// the export order stable.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds delta to a monotonic counter.
  void add(std::string_view counter, std::uint64_t delta = 1);
  /// Sets a gauge to the latest observed value (last write wins on scrape;
  /// per-thread shards each keep their own last value and the merge takes
  /// the one recorded most recently).
  void gauge(std::string_view name, double value);
  /// Records one observation into a histogram. Values must be finite and
  /// non-negative; NaN, -inf and negative values are clamped to 0.0 (the
  /// underflow bucket) and counted under the `metrics.invalid_observations`
  /// counter instead of poisoning the sum/min/max aggregates.
  void observe(std::string_view histogram, double value);

  /// Merges every shard (all threads, live or finished) into totals.
  MetricsSnapshot snapshot() const;
  /// snapshot() into a caller-owned document, reusing its map nodes: entries
  /// whose names are already present are overwritten in place, so a steady-
  /// state caller (the obs::MetricsSampler tick) allocates nothing once the
  /// metric name set has stabilized. Entries for names the registry no
  /// longer holds are reset to zero, never erased.
  void snapshot_into(MetricsSnapshot& out) const;
  /// Zeroes all recorded values; cells stay allocated so cached fast-path
  /// pointers on other threads remain valid.
  void reset();

  /// The process-wide registry every instrument records into.
  static MetricsRegistry& global();

  /// Master gate. Initialized once from the APPSCOPE_METRICS environment
  /// variable ("0"/"false"/empty mean off); flip it programmatically via
  /// set_enabled (StudyOptions::metrics does). Instruments check this
  /// before touching the registry, so a disabled run pays one relaxed
  /// atomic load per instrument.
  static bool enabled() noexcept;
  static void set_enabled(bool on) noexcept;

 private:
  struct Cell;
  struct Shard;
  friend class StageTimer;

  Cell& cell(std::string_view name, int kind);
  Shard& local_shard();

  const std::uint64_t id_;  // never-reused key for thread-local shard caches
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// RAII wall-clock timer for one pipeline stage. On stop (or destruction)
/// it records, under "stage.<name>.":
///   .wall_seconds  histogram of the stage's elapsed wall time
///   .calls         counter of completed stage executions
///   .items         counter of processed items (if add_items was called)
///   .bytes         counter of emitted bytes (if add_bytes was called)
/// Inert when metrics are disabled at construction time. add_items/add_bytes
/// are atomic, so pool workers can report into the caller's timer.
class StageTimer {
 public:
  explicit StageTimer(std::string stage);
  ~StageTimer();
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  void add_items(std::uint64_t n) noexcept {
    if (active_) items_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_bytes(std::uint64_t n) noexcept {
    if (active_) bytes_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Records now instead of at destruction; further calls are no-ops.
  void stop();
  bool active() const noexcept { return active_; }

 private:
  bool active_;
  std::string stage_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> items_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

// ---------------------------------------------------------------------------
// Export: the machine-readable metrics.json / metrics.csv feed.

/// Serializes a snapshot (plus the recorded trace spans, see util/trace.hpp)
/// into the stable metrics document: {"schema": "appscope.metrics/1",
/// "counters": {...}, "gauges": {...}, "histograms": {...}, "spans": [...]}.
Json metrics_to_json(const MetricsSnapshot& snapshot);

/// Parses a document produced by metrics_to_json back into a snapshot
/// (ignores the spans section). Throws InputError on schema mismatch.
MetricsSnapshot metrics_from_json(const Json& doc);

/// One CSV row per metric: kind,name,value,count,sum,min,max.
std::string metrics_to_csv(const MetricsSnapshot& snapshot);

/// Snapshot the global registry + global trace recorder and write the JSON
/// document to `path`. Throws InputError if the file cannot be written.
void write_metrics_json(const std::string& path);

/// APPSCOPE_METRICS_PATH if set, else "metrics.json".
std::string metrics_output_path();

/// Registers an atexit hook that writes metrics_output_path() when metrics
/// are enabled at process exit. Idempotent; used by the bench binaries so
/// `APPSCOPE_METRICS=1 build/bench/...` always leaves a metrics.json behind.
void write_metrics_at_exit();

/// Best-effort, never-throwing flush of the global registry (plus spans) to
/// metrics_output_path(). Returns false when metrics are disabled or the
/// write failed. NOT strictly async-signal-safe (it allocates and takes the
/// registry locks), but safe to call from a last-gasp signal handler on the
/// way to _exit: worst case the write fails and the handler still exits.
bool flush_metrics_best_effort() noexcept;

/// Installs SIGTERM/SIGINT handlers that flush_metrics_best_effort() and
/// _exit(128 + sig) — for binaries with no graceful drain path of their own
/// (appscope_query --follow), so an interrupted run still leaves its
/// metrics.json behind. Idempotent. Binaries that drain on SIGTERM
/// (appscope_serve) keep their own handler and escalate to this flush on
/// the second signal instead.
void install_metrics_signal_flush();

// ---------------------------------------------------------------------------
// Interval diffing: the live telemetry plane (src/obs) samples the registry
// periodically and works on per-interval deltas rather than process totals.

/// Per-interval difference cur - prev. Counters subtract (clamped at zero if
/// a reset intervened); gauges take cur's latest value; histogram count, sum
/// and buckets subtract per slot while min/max are taken from cur (they are
/// running extremes, not interval aggregates). Names present only in `cur`
/// diff against zero; names present only in `prev` are dropped.
MetricsSnapshot metrics_delta(const MetricsSnapshot& prev,
                              const MetricsSnapshot& cur);

/// Upper bound (exclusive) of power-of-two histogram bucket `index`, i.e.
/// 2^(index + 1 + kHistogramMinExp). The last bucket is clamped and has no
/// finite upper bound (render it as +Inf).
double histogram_bucket_upper_bound(std::size_t index) noexcept;

/// Nearest-rank quantile (q in [0, 1]) of one histogram, resolved to the
/// containing bucket's upper bound; 0.0 for an empty histogram. Used by the
/// sampler's p99 series and the watchdog's seal-latency SLO check.
double histogram_quantile(const HistogramSnapshot& h, double q) noexcept;

}  // namespace appscope::util
