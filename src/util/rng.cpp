#include "util/rng.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace appscope::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t tag) const noexcept {
  // Mix the full parent state with the tag through SplitMix64 so forked
  // streams do not overlap the parent sequence.
  SplitMix64 sm(s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 47) ^
                (tag * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL));
  Rng child(sm.next());
  return child;
}

double Rng::uniform() noexcept {
  // 53 random bits into the mantissa: uniform on [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless unbiased bounded sampling.
  if (n == 0) return 0;  // degenerate; callers validate via APPSCOPE_REQUIRE
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= std::numeric_limits<double>::min()) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) noexcept {
  return mean + sigma * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) noexcept {
  double u = uniform();
  while (u <= std::numeric_limits<double>::min()) u = uniform();
  return -std::log(u) / lambda;
}

std::uint64_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion by multiplication.
    const double limit = std::exp(-lambda);
    double prod = uniform();
    std::uint64_t k = 0;
    while (prod > limit) {
      ++k;
      prod *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for synthetic
  // traffic volumes at lambda >= 30 (relative error < 1e-2 on tail shares).
  const double x = normal(lambda, std::sqrt(lambda));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

// ---------------------------------------------------------------------------
// ZipfSampler — rejection-inversion (Hörmann & Derflinger 1996).
// ---------------------------------------------------------------------------

namespace {
/// Helper: computes (exp(x) - 1) / x with stability near 0.
double expm1_over_x(double x) noexcept {
  return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x / 2.0;
}
}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  APPSCOPE_REQUIRE(n >= 1, "ZipfSampler needs at least one rank");
  APPSCOPE_REQUIRE(s > 0.0, "ZipfSampler exponent must be positive");
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n) + 0.5);
  t_ = 2.0 - h_inv(h(2.5) - std::pow(2.0, -s_));
}

double ZipfSampler::h(double x) const noexcept {
  // H(x) = integral of x^-s; log form when s == 1.
  const double log_x = std::log(x);
  return expm1_over_x((1.0 - s_) * log_x) * log_x;
}

double ZipfSampler::h_inv(double x) const noexcept {
  const double one_minus_s = 1.0 - s_;
  if (std::abs(one_minus_s) < 1e-12) return std::exp(x);  // s == 1: H(x)=log x
  const double t = std::max(std::nextafter(-1.0, 0.0), x * one_minus_s);
  return std::exp(std::log1p(t) / one_minus_s);
}

std::uint64_t ZipfSampler::operator()(Rng& rng) const noexcept {
  if (n_ == 1) return 1;
  while (true) {
    const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
    const double x = h_inv(u);
    const auto k = static_cast<std::uint64_t>(x + 0.5);
    const auto clamped = k < 1 ? 1 : (k > n_ ? n_ : k);
    const double kd = static_cast<double>(clamped);
    if (kd - x <= t_ || u >= h(kd + 0.5) - std::exp(-s_ * std::log(kd))) {
      return clamped;
    }
  }
}

// ---------------------------------------------------------------------------
// AliasSampler — Walker / Vose alias method.
// ---------------------------------------------------------------------------

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  APPSCOPE_REQUIRE(!weights.empty(), "AliasSampler needs at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    APPSCOPE_REQUIRE(w >= 0.0, "AliasSampler weights must be non-negative");
    total += w;
  }
  APPSCOPE_REQUIRE(total > 0.0, "AliasSampler needs a positive total weight");

  const std::size_t n = weights.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasSampler::operator()(Rng& rng) const noexcept {
  const std::size_t column = static_cast<std::size_t>(rng.uniform_index(prob_.size()));
  return rng.uniform() < prob_[column] ? column : alias_[column];
}

}  // namespace appscope::util
