#include "util/mem_stats.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/resource.h>
#include <unistd.h>
#endif

#ifdef APPSCOPE_MEM_TRACE
#include <cstddef>
#include <new>
#endif

namespace appscope::util {

namespace {

#ifdef APPSCOPE_MEM_TRACE
/// Trivial PODs only: operator new can run during thread-local storage
/// setup, so these must need no dynamic initialization (zero-filled .tbss).
struct ThreadMemTls {
  std::uint64_t alloc_count;
  std::uint64_t alloc_bytes;
  std::uint64_t free_count;
};
thread_local ThreadMemTls t_mem;

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_free_count{0};

inline void note_alloc(std::size_t size) noexcept {
  ++t_mem.alloc_count;
  t_mem.alloc_bytes += size;
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
}

inline void note_free() noexcept {
  ++t_mem.free_count;
  g_free_count.fetch_add(1, std::memory_order_relaxed);
}
#endif  // APPSCOPE_MEM_TRACE

bool env_mem_sampling() {
  const char* env = std::getenv("APPSCOPE_MEM_TRACE");
  if (env == nullptr) return false;
  return *env != '\0' && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "false") != 0 && std::strcmp(env, "off") != 0;
}

std::atomic<bool>& mem_sampling_flag() {
  static std::atomic<bool> flag{env_mem_sampling()};
  return flag;
}

}  // namespace

bool mem_trace_compiled() noexcept {
#ifdef APPSCOPE_MEM_TRACE
  return true;
#else
  return false;
#endif
}

MemCounters thread_mem_counters() noexcept {
#ifdef APPSCOPE_MEM_TRACE
  return {t_mem.alloc_count, t_mem.alloc_bytes, t_mem.free_count};
#else
  return {};
#endif
}

MemCounters process_mem_counters() noexcept {
#ifdef APPSCOPE_MEM_TRACE
  return {g_alloc_count.load(std::memory_order_relaxed),
          g_alloc_bytes.load(std::memory_order_relaxed),
          g_free_count.load(std::memory_order_relaxed)};
#else
  return {};
#endif
}

std::uint64_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::uint64_t current_rss_bytes() noexcept {
#if defined(__linux__)
  // /proc/self/statm: "<size> <resident> ..." in pages. Raw read with a
  // stack buffer — no allocation, so the span hooks can call this freely.
  const int fd = ::open("/proc/self/statm", O_RDONLY);
  if (fd < 0) return 0;
  char buf[128];
  const ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
  ::close(fd);
  if (n <= 0) return 0;
  buf[n] = '\0';
  const char* p = buf;
  while (*p != '\0' && *p != ' ') ++p;  // skip <size>
  if (*p != ' ') return 0;
  std::uint64_t resident_pages = 0;
  for (++p; *p >= '0' && *p <= '9'; ++p) {
    resident_pages = resident_pages * 10 + static_cast<std::uint64_t>(*p - '0');
  }
  const long page = ::sysconf(_SC_PAGESIZE);
  return resident_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

bool mem_sampling_enabled() noexcept {
  return mem_sampling_flag().load(std::memory_order_relaxed);
}

void set_mem_sampling(bool on) noexcept {
  mem_sampling_flag().store(on, std::memory_order_relaxed);
}

}  // namespace appscope::util

#ifdef APPSCOPE_MEM_TRACE
// ---------------------------------------------------------------------------
// Counting operator new/delete shim. Compiled only under APPSCOPE_MEM_TRACE;
// this translation unit is always linked (the accessors above are referenced
// by util/trace.cpp), so the replacements reliably take effect.

namespace {

void* counted_alloc(std::size_t size) noexcept {
  appscope::util::note_alloc(size);
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  appscope::util::note_alloc(size);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept {
  appscope::util::note_free();
  std::free(p);
}

void operator delete[](void* p) noexcept {
  appscope::util::note_free();
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept {
  appscope::util::note_free();
  std::free(p);
}

void operator delete[](void* p, std::size_t) noexcept {
  appscope::util::note_free();
  std::free(p);
}

void operator delete(void* p, std::align_val_t) noexcept {
  appscope::util::note_free();
  std::free(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
  appscope::util::note_free();
  std::free(p);
}

void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  appscope::util::note_free();
  std::free(p);
}

void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  appscope::util::note_free();
  std::free(p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  appscope::util::note_free();
  std::free(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  appscope::util::note_free();
  std::free(p);
}
#endif  // APPSCOPE_MEM_TRACE
