// appscope/util/prometheus.hpp
//
// Prometheus text exposition (format version 0.0.4) of a MetricsSnapshot,
// rendered for the obs::AdminServer /metrics endpoint. No external
// dependency: the format is line-oriented text.
//
//   * metric names are sanitized into the Prometheus grammar
//     [a-zA-Z_:][a-zA-Z0-9_:]* — the registry's dotted names map '.' (and
//     every other illegal byte) to '_';
//   * counters and gauges render as one sample each, with a # HELP line
//     carrying the original (escaped) registry name and a # TYPE line;
//   * histograms expand the fixed power-of-two bucket layout
//     (util::histogram_bucket_upper_bound) into cumulative `le` buckets,
//     ending in the mandatory `+Inf` bucket plus `_sum` and `_count`.
//
// Output is byte-stable for a given snapshot: families render in the
// snapshot's map order (sorted by name) and doubles use round-trip %.17g.
#pragma once

#include <string>
#include <string_view>

#include "util/metrics.hpp"

namespace appscope::util {

/// Maps a registry metric name into the Prometheus name grammar: every byte
/// outside [a-zA-Z0-9_:] becomes '_', and a leading digit is prefixed with
/// '_'. Distinct registry names can collide after sanitization; the
/// exposition keeps them apart only by their HELP lines.
std::string prometheus_name(std::string_view name);

/// Escapes a HELP-line value: backslash and newline (the two characters the
/// exposition format requires escaping there).
std::string prometheus_escape_help(std::string_view text);

/// Escapes a label value: backslash, double quote and newline.
std::string prometheus_escape_label(std::string_view text);

/// Renders the whole snapshot as one exposition document (counters, then
/// gauges, then histograms — each family preceded by # HELP and # TYPE).
std::string metrics_to_prometheus(const MetricsSnapshot& snapshot);

/// The Content-Type the 0.0.4 text format is served under.
inline constexpr std::string_view kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace appscope::util
