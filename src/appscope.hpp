// appscope.hpp — umbrella header for the appscope library.
//
// Downstream users can include this single header to get the full public
// API; fine-grained headers remain available for faster builds:
//
//   #include <appscope.hpp>
//   auto dataset = appscope::core::TrafficDataset::generate(
//       appscope::synth::ScenarioConfig::example_scale());
//   auto study = appscope::core::run_study(dataset);
#pragma once

// util — RNG, CSV, CLI, tables, errors
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

// la — dense linear algebra, FFT, eigensolvers
#include "la/eigen.hpp"
#include "la/fft.hpp"
#include "la/matrix.hpp"
#include "la/vector_ops.hpp"

// stats
#include "stats/bootstrap.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "stats/distribution.hpp"
#include "stats/regression.hpp"
#include "stats/zipf.hpp"

// ts — time-series analysis
#include "ts/autocorrelation.hpp"
#include "ts/calendar.hpp"
#include "ts/cluster_quality.hpp"
#include "ts/hierarchical.hpp"
#include "ts/kmeans.hpp"
#include "ts/kshape.hpp"
#include "ts/peaks.hpp"
#include "ts/sbd.hpp"
#include "ts/time_series.hpp"
#include "ts/znorm.hpp"

// geo — synthetic country
#include "geo/commune.hpp"
#include "geo/grid_map.hpp"
#include "geo/point.hpp"
#include "geo/spatial_index.hpp"
#include "geo/territory.hpp"
#include "geo/territory_io.hpp"
#include "geo/urbanization.hpp"

// workload — services, profiles, population, mobility
#include "workload/catalog.hpp"
#include "workload/mobility.hpp"
#include "workload/population.hpp"
#include "workload/service.hpp"
#include "workload/spatial_profile.hpp"
#include "workload/temporal_profile.hpp"

// net — measurement pipeline
#include "net/base_station.hpp"
#include "net/dpi.hpp"
#include "net/gateway.hpp"
#include "net/gtp.hpp"
#include "net/probe.hpp"
#include "net/simulator.hpp"
#include "net/types.hpp"

// synth — scenario generation
#include "synth/generator.hpp"
#include "synth/scenario.hpp"
#include "synth/sinks.hpp"

// io — binary dataset snapshot store
#include "io/format.hpp"
#include "io/snapshot.hpp"
#include "io/snapshot_reader.hpp"
#include "io/snapshot_sink.hpp"
#include "io/snapshot_writer.hpp"

// core — the paper's analyses
#include "core/category_analysis.hpp"
#include "core/compare.hpp"
#include "core/dataset.hpp"
#include "core/dataset_io.hpp"
#include "core/rank_analysis.hpp"
#include "core/report.hpp"
#include "core/slicing.hpp"
#include "core/spatial_analysis.hpp"
#include "core/study.hpp"
#include "core/temporal_analysis.hpp"
#include "core/urbanization_analysis.hpp"
