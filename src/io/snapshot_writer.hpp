// appscope/io/snapshot_writer.hpp
//
// Single-pass streaming writer for the "appscope.snapshot/1" format: the
// fixed-capacity header + section table is reserved up front, payload
// sections append sequentially at kSectionAlignment boundaries, and
// finish() seeks back exactly once to fill in the table, checksums and
// total size. Memory stays O(largest section) — sections are handed in as
// ready-made byte/column spans, never buffered twice.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "io/format.hpp"

namespace appscope::io {

class SnapshotWriter {
 public:
  /// Dimension block copied into the header; readers cross-check every
  /// columnar section (and the embedded config) against it.
  struct Dimensions {
    std::uint32_t services = 0;
    std::uint32_t communes = 0;
    std::uint32_t hours = 0;
    std::uint32_t directions = 0;
    std::uint32_t urbanization_classes = 0;
  };

  /// Opens `path` for writing (truncates). Throws InputError on I/O error.
  SnapshotWriter(const std::string& path, const Dimensions& dims,
                 std::uint64_t config_hash, std::uint64_t traffic_seed);

  /// A writer abandoned before finish() leaves a file with a zeroed header
  /// behind — readers reject it (bad magic), so a crash mid-write can never
  /// yield a silently-truncated "valid" snapshot.
  ~SnapshotWriter() = default;
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Appends one section (aligned, CRC32-summed). Section ids must be
  /// unique; at most kMaxSections sections fit.
  void add_section(SectionId id, std::span<const std::byte> payload,
                   SectionKind kind = SectionKind::kRaw);
  void add_f64_section(SectionId id, std::span<const double> column);
  void add_u64_section(SectionId id, std::span<const std::uint64_t> column);

  /// Writes the header + section table and flushes. Returns the total file
  /// size in bytes. Must be called exactly once.
  std::uint64_t finish();

 private:
  std::string path_;
  std::ofstream out_;
  SnapshotHeader header_;
  std::vector<SectionEntry> entries_;
  std::uint64_t cursor_ = 0;
  bool finished_ = false;
};

}  // namespace appscope::io
