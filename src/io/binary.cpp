#include "io/binary.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "util/error.hpp"

namespace appscope::io {

namespace {

std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> bytes) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::byte b : bytes) {
    crc = table[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint64_t fnv1a64(std::span<const std::byte> bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const std::byte b : bytes) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// --- ByteWriter -------------------------------------------------------------

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<std::byte>((v >> shift) & 0xFFu));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<std::byte>((v >> shift) & 0xFFu));
  }
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(std::string_view s) {
  APPSCOPE_REQUIRE(s.size() <= 0xFFFFFFFFu, "ByteWriter: string too long");
  u32(static_cast<std::uint32_t>(s.size()));
  raw(s.data(), s.size());
}

void ByteWriter::raw(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::byte*>(data);
  buffer_.insert(buffer_.end(), p, p + size);
}

// --- ByteReader -------------------------------------------------------------

void ByteReader::require(std::size_t size) const {
  if (remaining() < size) {
    throw util::InputError("snapshot: truncated payload (need " +
                           std::to_string(size) + " bytes, have " +
                           std::to_string(remaining()) + ")");
  }
}

std::uint8_t ByteReader::u8() {
  require(1);
  return static_cast<std::uint8_t>(bytes_[offset_++]);
}

std::uint32_t ByteReader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(bytes_[offset_++]) << shift;
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<std::uint64_t>(bytes_[offset_++]) << shift;
  }
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint32_t size = u32();
  require(size);
  std::string out(size, '\0');
  std::memcpy(out.data(), bytes_.data() + offset_, size);
  offset_ += size;
  return out;
}

void ByteReader::raw(void* out, std::size_t size) {
  require(size);
  std::memcpy(out, bytes_.data() + offset_, size);
  offset_ += size;
}

}  // namespace appscope::io
