#include "io/snapshot_writer.hpp"

#include <algorithm>

#include "io/binary.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace appscope::io {

namespace {

std::vector<std::byte> encode_table(const std::vector<SectionEntry>& entries) {
  ByteWriter w;
  for (const SectionEntry& e : entries) {
    w.u32(static_cast<std::uint32_t>(e.id));
    w.u32(static_cast<std::uint32_t>(e.kind));
    w.u64(e.offset);
    w.u64(e.payload_bytes);
    w.u32(e.crc);
    w.u32(0);  // reserved
  }
  for (std::size_t i = entries.size(); i < kMaxSections; ++i) {
    for (std::size_t b = 0; b < kSectionEntryBytes; ++b) w.u8(0);
  }
  return std::move(w).take();
}

std::vector<std::byte> encode_header(const SnapshotHeader& h) {
  ByteWriter w;
  for (const std::uint8_t m : kSnapshotMagic) w.u8(m);
  w.u32(h.version);
  w.u64(h.config_hash);
  w.u64(h.traffic_seed);
  w.u32(h.services);
  w.u32(h.communes);
  w.u32(h.hours);
  w.u32(h.directions);
  w.u32(h.urbanization_classes);
  w.u32(h.section_count);
  w.u64(h.file_bytes);
  w.u32(h.table_crc);
  while (w.size() < kHeaderBytes) w.u8(0);
  return std::move(w).take();
}

void write_bytes(std::ofstream& out, std::span<const std::byte> bytes,
                 const std::string& path) {
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw util::InputError("snapshot: write failed on " + path);
}

}  // namespace

SnapshotWriter::SnapshotWriter(const std::string& path, const Dimensions& dims,
                               std::uint64_t config_hash,
                               std::uint64_t traffic_seed)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    throw util::InputError("snapshot: cannot open " + path + " for writing");
  }
  header_.config_hash = config_hash;
  header_.traffic_seed = traffic_seed;
  header_.services = dims.services;
  header_.communes = dims.communes;
  header_.hours = dims.hours;
  header_.directions = dims.directions;
  header_.urbanization_classes = dims.urbanization_classes;
  // Reserve the header + table region with zeros; a zeroed header has no
  // valid magic, so an unfinished file is unreadable by construction.
  const std::vector<std::byte> zeros(kPayloadStart, std::byte{0});
  write_bytes(out_, zeros, path_);
  cursor_ = kPayloadStart;
}

void SnapshotWriter::add_section(SectionId id, std::span<const std::byte> payload,
                                 SectionKind kind) {
  APPSCOPE_REQUIRE(!finished_, "SnapshotWriter: add_section after finish");
  APPSCOPE_REQUIRE(entries_.size() < kMaxSections,
                   "SnapshotWriter: section table full");
  APPSCOPE_REQUIRE(std::none_of(entries_.begin(), entries_.end(),
                                [&](const SectionEntry& e) { return e.id == id; }),
                   "SnapshotWriter: duplicate section id");
  util::ScopedSpan span("snapshot.write." + std::string(section_name(id)));

  const std::uint64_t aligned = align_up(cursor_, kSectionAlignment);
  if (aligned > cursor_) {
    const std::vector<std::byte> pad(aligned - cursor_, std::byte{0});
    write_bytes(out_, pad, path_);
    cursor_ = aligned;
  }

  SectionEntry entry;
  entry.id = id;
  entry.kind = kind;
  entry.offset = cursor_;
  entry.payload_bytes = payload.size();
  entry.crc = crc32(payload);
  entries_.push_back(entry);

  write_bytes(out_, payload, path_);
  cursor_ += payload.size();

  if (util::MetricsRegistry::enabled()) {
    auto& metrics = util::MetricsRegistry::global();
    metrics.add("io.snapshot.sections");
    metrics.add("io.snapshot.bytes_written", payload.size());
  }
}

void SnapshotWriter::add_f64_section(SectionId id, std::span<const double> column) {
  add_section(id, std::as_bytes(column), SectionKind::kF64);
}

void SnapshotWriter::add_u64_section(SectionId id,
                                     std::span<const std::uint64_t> column) {
  add_section(id, std::as_bytes(column), SectionKind::kU64);
}

std::uint64_t SnapshotWriter::finish() {
  APPSCOPE_REQUIRE(!finished_, "SnapshotWriter: finish called twice");
  finished_ = true;

  header_.section_count = static_cast<std::uint32_t>(entries_.size());
  header_.file_bytes = cursor_;
  const std::vector<std::byte> table = encode_table(entries_);
  header_.table_crc = crc32(table);
  const std::vector<std::byte> header = encode_header(header_);

  out_.seekp(0);
  write_bytes(out_, header, path_);
  out_.seekp(static_cast<std::streamoff>(kHeaderBytes));
  write_bytes(out_, table, path_);
  out_.flush();
  if (!out_) throw util::InputError("snapshot: flush failed on " + path_);

  if (util::MetricsRegistry::enabled()) {
    // Count the header/table/padding overhead too, so the counter totals
    // the exact on-disk size of every snapshot written.
    std::uint64_t payload = 0;
    for (const SectionEntry& e : entries_) payload += e.payload_bytes;
    util::MetricsRegistry::global().add("io.snapshot.bytes_written",
                                        header_.file_bytes - payload);
  }
  return header_.file_bytes;
}

}  // namespace appscope::io
