// appscope/io/snapshot_reader.hpp
//
// Validating reader for the "appscope.snapshot/1" format with an
// mmap-backed zero-copy path: on POSIX the file is mapped read-only and
// every section accessor returns a span pointing straight into the mapping
// (payloads are kSectionAlignment-aligned in the file, so f64/u64 columns
// can be viewed in place); platforms without mmap fall back to one buffered
// read.
//
// Two validation modes:
//   - kEager (default): the whole file is mapped and every section CRC is
//     checked in the constructor — bad magic, version skew, truncation,
//     table/section checksum mismatches and malformed table entries throw
//     util::InputError before any payload is interpreted, never UB.
//   - kLazy: only the header + section table window is mapped and validated
//     up front (magic, version, sizes, table CRC, entry bounds). Each
//     section payload is mapped and CRC-checked on *first touch*, once, so
//     a query that reads one section never pays for — and never even maps —
//     the others. A corrupt untouched section stays invisible; touching it
//     throws the same typed util::InputError an eager open would have.
//     First-touch validation is thread-safe (atomic publish under a mutex),
//     so one lazy reader can serve concurrent query threads.
//
// mapped_bytes() exposes how much of the file is actually mapped — the
// basis for the io.snapshot.mapped_bytes counter that proves lazy opens
// touch strictly less than the file size.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "io/format.hpp"

namespace appscope::io {

/// How much of the snapshot the constructor validates (see file comment).
enum class ValidationMode {
  kEager,
  kLazy,
};

class SnapshotReader {
 public:
  /// Opens `path` and validates per `mode`. Throws util::InputError on any
  /// structural problem (see file comment). On platforms without mmap,
  /// kLazy silently degrades to the eager buffered read.
  explicit SnapshotReader(const std::string& path,
                          ValidationMode mode = ValidationMode::kEager);
  ~SnapshotReader();
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  const SnapshotHeader& header() const noexcept { return header_; }
  const std::vector<SectionEntry>& sections() const noexcept { return entries_; }
  bool has_section(SectionId id) const noexcept;

  /// Payload view of one section (zero-copy into the mapping when mapped).
  /// Throws util::InputError if the section is absent, or — in lazy mode,
  /// on first touch — if its payload fails the CRC check.
  std::span<const std::byte> section(SectionId id) const;

  /// Typed column views; throw util::InputError when the section kind or
  /// element size does not match.
  std::span<const double> f64_section(SectionId id) const;
  std::span<const std::uint64_t> u64_section(SectionId id) const;

  /// True when the file is mmap-viewed (zero-copy); false on the buffered
  /// fallback path.
  bool mapped() const noexcept;

  ValidationMode mode() const noexcept { return mode_; }

  /// Bytes of the file currently mapped (or buffered). Eager mode reports
  /// the whole file; lazy mode starts at the header + table window and
  /// grows as sections are first touched.
  std::uint64_t mapped_bytes() const noexcept {
    return mapped_bytes_.load(std::memory_order_relaxed);
  }

  const std::string& path() const noexcept { return path_; }
  std::uint64_t file_bytes() const noexcept { return header_.file_bytes; }

 private:
  struct Backing;       // mmap handles / owned buffer
  struct SectionState;  // lazy per-section mapping + validation cache

  std::span<const std::byte> bytes() const noexcept;
  const SectionEntry& entry(SectionId id) const;
  /// Index of `e` in entries_ (for the lazy state table).
  std::size_t entry_index(const SectionEntry& e) const noexcept;
  std::span<const std::byte> payload(const SectionEntry& e) const;
  std::span<const std::byte> lazy_payload(const SectionEntry& e) const;
  void check_payload_crc(const SectionEntry& e,
                         std::span<const std::byte> payload) const;
  void validate_header_and_table(std::span<const std::byte> head,
                                 std::uint64_t actual_file_bytes);
  void validate_all_sections();
  void record_mapped(std::uint64_t bytes) const noexcept;

  std::string path_;
  ValidationMode mode_ = ValidationMode::kEager;
  std::unique_ptr<Backing> backing_;
  SnapshotHeader header_;
  std::vector<SectionEntry> entries_;
  std::unique_ptr<SectionState[]> lazy_sections_;
  mutable std::mutex lazy_mu_;
  mutable std::atomic<std::uint64_t> mapped_bytes_{0};
};

}  // namespace appscope::io
