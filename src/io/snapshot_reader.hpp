// appscope/io/snapshot_reader.hpp
//
// Validating reader for the "appscope.snapshot/1" format with an
// mmap-backed zero-copy path: on POSIX the file is mapped read-only and
// every section accessor returns a span pointing straight into the mapping
// (payloads are kSectionAlignment-aligned in the file, so f64/u64 columns
// can be viewed in place); platforms without mmap fall back to one buffered
// read. All validation happens in the constructor — bad magic, version
// skew, truncation, table/section checksum mismatches and malformed table
// entries throw util::InputError before any payload is interpreted, never
// UB.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "io/format.hpp"

namespace appscope::io {

class SnapshotReader {
 public:
  /// Opens, maps and fully validates `path`. Throws util::InputError on any
  /// structural problem (see file comment).
  explicit SnapshotReader(const std::string& path);
  ~SnapshotReader();
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  const SnapshotHeader& header() const noexcept { return header_; }
  const std::vector<SectionEntry>& sections() const noexcept { return entries_; }
  bool has_section(SectionId id) const noexcept;

  /// Payload view of one section (zero-copy into the mapping when mapped).
  /// Throws util::InputError if the section is absent.
  std::span<const std::byte> section(SectionId id) const;

  /// Typed column views; throw util::InputError when the section kind or
  /// element size does not match.
  std::span<const double> f64_section(SectionId id) const;
  std::span<const std::uint64_t> u64_section(SectionId id) const;

  /// True when the file is mmap-viewed (zero-copy); false on the buffered
  /// fallback path.
  bool mapped() const noexcept;

  const std::string& path() const noexcept { return path_; }
  std::uint64_t file_bytes() const noexcept { return header_.file_bytes; }

 private:
  struct Backing;  // mmap handle or owned buffer

  std::span<const std::byte> bytes() const noexcept;
  const SectionEntry& entry(SectionId id) const;
  void validate();

  std::string path_;
  std::unique_ptr<Backing> backing_;
  SnapshotHeader header_;
  std::vector<SectionEntry> entries_;
};

}  // namespace appscope::io
