#include "io/format.hpp"

namespace appscope::io {

std::string_view section_name(SectionId id) noexcept {
  switch (id) {
    case SectionId::kConfig: return "config";
    case SectionId::kTerritory: return "territory";
    case SectionId::kSubscribers: return "subscribers";
    case SectionId::kCatalog: return "catalog";
    case SectionId::kNationalSeries: return "national_series";
    case SectionId::kCommuneTotals: return "commune_totals";
    case SectionId::kUrbanizationSeries: return "urbanization_series";
    case SectionId::kTotals: return "totals";
    case SectionId::kClassSubscribers: return "class_subscribers";
  }
  return "unknown";
}

}  // namespace appscope::io
