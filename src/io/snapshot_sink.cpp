#include "io/snapshot_sink.hpp"

#include <utility>

#include "util/error.hpp"

namespace appscope::io {

SnapshotSink::SnapshotSink(std::string path,
                           const synth::ScenarioConfig& config,
                           const geo::Territory& territory,
                           const workload::SubscriberBase& subscribers,
                           const workload::ServiceCatalog& catalog)
    : path_(std::move(path)),
      config_(config),
      territory_(territory),
      subscribers_(subscribers),
      catalog_(catalog),
      national_(catalog.size()),
      commune_totals_(catalog.size(), territory.size()),
      urbanization_(catalog.size()) {
  APPSCOPE_REQUIRE(subscribers.commune_count() == territory.size(),
                   "SnapshotSink: subscriber base disagrees with territory");
}

void SnapshotSink::consume(const synth::TrafficCell& cell) {
  national_.consume(cell);
  commune_totals_.consume(cell);
  urbanization_.consume(cell);
  totals_.consume(cell);
}

void SnapshotSink::consume_row(const synth::TrafficRow& row) {
  national_.consume_row(row);
  commune_totals_.consume_row(row);
  urbanization_.consume_row(row);
  totals_.consume_row(row);
}

SnapshotStats SnapshotSink::finish() {
  APPSCOPE_REQUIRE(!finished_, "SnapshotSink: finish called twice");
  finished_ = true;

  DatasetAggregates aggregates;
  aggregates.services = catalog_.size();
  aggregates.communes = territory_.size();
  aggregates.national = national_.snapshot_data();
  aggregates.commune_totals = commune_totals_.snapshot_data();
  aggregates.urbanization = urbanization_.snapshot_data();
  aggregates.downlink_total = totals_.downlink();
  aggregates.uplink_total = totals_.uplink();
  aggregates.cells_consumed = totals_.cells_consumed();
  for (std::size_t u = 0; u < geo::kUrbanizationCount; ++u) {
    aggregates.class_subscribers[u] =
        subscribers_.total_in(territory_, static_cast<geo::Urbanization>(u));
  }
  return write_snapshot(path_, config_, territory_, subscribers_, catalog_,
                        aggregates);
}

}  // namespace appscope::io
