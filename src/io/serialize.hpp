// appscope/io/serialize.hpp
//
// Binary encode/decode of the snapshot's self-containment sections: the
// ScenarioConfig that produced a dataset, the geo::Territory it ran on, the
// workload::SubscriberBase summary (per-commune counts) and the
// workload::ServiceCatalog. Encodings are byte-stable (little-endian,
// doubles as IEEE-754 bit patterns), so the same inputs always serialize to
// the same bytes and encode -> decode is exact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geo/territory.hpp"
#include "synth/scenario.hpp"
#include "workload/catalog.hpp"
#include "workload/population.hpp"

namespace appscope::io {

std::vector<std::byte> encode_config(const synth::ScenarioConfig& config);
synth::ScenarioConfig decode_config(std::span<const std::byte> bytes);

/// FNV-1a fingerprint of the byte-stable config encoding; stored in the
/// snapshot header and used by load_or_generate to match a snapshot against
/// the scenario a caller asks for.
std::uint64_t config_hash(const synth::ScenarioConfig& config);

std::vector<std::byte> encode_territory(const geo::Territory& territory);
geo::Territory decode_territory(std::span<const std::byte> bytes);

std::vector<std::byte> encode_subscribers(const workload::SubscriberBase& base);
workload::SubscriberBase decode_subscribers(std::span<const std::byte> bytes);

std::vector<std::byte> encode_catalog(const workload::ServiceCatalog& catalog);
workload::ServiceCatalog decode_catalog(std::span<const std::byte> bytes);

}  // namespace appscope::io
