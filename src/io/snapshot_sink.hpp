// appscope/io/snapshot_sink.hpp
//
// Streaming persistence: a TrafficSink that folds the generated cell
// stream into the same four aggregate families a TrafficDataset keeps
// (O(aggregates) memory, exactly like the in-memory sinks) and writes one
// "appscope.snapshot/1" file on finish(). Plugs into any producer that
// feeds a synth::TrafficSink — generation persists while it aggregates,
// with no event-level buffering.
#pragma once

#include <string>

#include "io/snapshot.hpp"
#include "synth/sinks.hpp"

namespace appscope::io {

class SnapshotSink final : public synth::TrafficSink {
 public:
  /// All references must outlive the sink; they are serialized into the
  /// snapshot on finish() so the file is self-contained.
  SnapshotSink(std::string path, const synth::ScenarioConfig& config,
               const geo::Territory& territory,
               const workload::SubscriberBase& subscribers,
               const workload::ServiceCatalog& catalog);

  void consume(const synth::TrafficCell& cell) override;
  void consume_row(const synth::TrafficRow& row) override;

  /// Writes the snapshot file. Call exactly once, after the producer is
  /// done streaming. Throws util::InputError on I/O failure.
  SnapshotStats finish();

 private:
  std::string path_;
  const synth::ScenarioConfig& config_;
  const geo::Territory& territory_;
  const workload::SubscriberBase& subscribers_;
  const workload::ServiceCatalog& catalog_;

  synth::NationalSeriesSink national_;
  synth::CommuneTotalsSink commune_totals_;
  synth::UrbanizationSeriesSink urbanization_;
  synth::TotalsSink totals_;
  bool finished_ = false;
};

}  // namespace appscope::io

namespace appscope::synth {
/// The streaming persistence sink, aliased where the other sinks live.
using SnapshotSink = ::appscope::io::SnapshotSink;
}  // namespace appscope::synth
