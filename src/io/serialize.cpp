#include "io/serialize.hpp"

#include <string>
#include <utility>

#include "io/binary.hpp"
#include "util/error.hpp"

namespace appscope::io {

namespace {

// Every decoder validates enum bytes before casting: a corrupted (but
// checksum-colliding) or hand-crafted file must produce an InputError, not
// an out-of-range enum.
template <typename Enum>
Enum checked_enum(std::uint8_t raw, std::size_t count, const char* what) {
  if (raw >= count) {
    throw util::InputError(std::string("snapshot: invalid ") + what +
                           " value " + std::to_string(raw));
  }
  return static_cast<Enum>(raw);
}

void expect_exhausted(const ByteReader& r, const char* what) {
  if (!r.exhausted()) {
    throw util::InputError(std::string("snapshot: trailing bytes after ") +
                           what + " payload");
  }
}

void encode_point(ByteWriter& w, const geo::Point& p) {
  w.f64(p.x_km);
  w.f64(p.y_km);
}

geo::Point decode_point(ByteReader& r) {
  geo::Point p;
  p.x_km = r.f64();
  p.y_km = r.f64();
  return p;
}

}  // namespace

// --- ScenarioConfig ---------------------------------------------------------

std::vector<std::byte> encode_config(const synth::ScenarioConfig& config) {
  ByteWriter w;
  const geo::CountryConfig& c = config.country;
  w.u64(c.commune_count);
  w.u64(c.metro_count);
  w.f64(c.side_km);
  w.u64(c.seed);
  w.u32(c.largest_metro_population);
  w.f64(c.metro_zipf_exponent);
  w.f64(c.metro_commune_fraction);
  w.f64(c.metro_core_share);
  w.f64(c.rural_lognormal_mu);
  w.f64(c.rural_lognormal_sigma);
  w.f64(c.tgv_distance_km);
  w.u64(c.tgv_line_count);
  w.f64(c.thresholds.urban_density);
  w.f64(c.thresholds.semi_urban_density);
  w.u32(c.thresholds.urban_min_population);
  w.f64(c.p4g_urban);
  w.f64(c.p4g_semi);
  w.f64(c.p4g_rural);
  w.f64(c.p3g_urban);
  w.f64(c.p3g_semi);
  w.f64(c.p3g_rural);
  w.f64(c.p4g_tgv);

  const workload::PopulationConfig& p = config.population;
  w.f64(p.market_share);
  w.f64(p.share_jitter);
  w.u64(p.seed);

  w.u64(config.traffic_seed);
  w.f64(config.temporal_noise_sigma);
  w.u8(config.enable_mobility ? 1 : 0);
  w.f64(config.mobility.commuter_fraction);
  w.f64(config.mobility.work_start);
  w.f64(config.mobility.work_end);
  w.f64(config.mobility.shoulder_hours);
  // Format v1.1 tail (snapshot minor version 1): the region identifier and
  // the regional popularity tilt. Always written, so the region is part of
  // the config hash and a snapshot can never silently merge into the wrong
  // national view. decode_config accepts the shorter v1.0 encoding.
  w.str(config.region);
  w.f64(config.popularity_tilt);
  return std::move(w).take();
}

synth::ScenarioConfig decode_config(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  synth::ScenarioConfig config;
  geo::CountryConfig& c = config.country;
  c.commune_count = static_cast<std::size_t>(r.u64());
  c.metro_count = static_cast<std::size_t>(r.u64());
  c.side_km = r.f64();
  c.seed = r.u64();
  c.largest_metro_population = r.u32();
  c.metro_zipf_exponent = r.f64();
  c.metro_commune_fraction = r.f64();
  c.metro_core_share = r.f64();
  c.rural_lognormal_mu = r.f64();
  c.rural_lognormal_sigma = r.f64();
  c.tgv_distance_km = r.f64();
  c.tgv_line_count = static_cast<std::size_t>(r.u64());
  c.thresholds.urban_density = r.f64();
  c.thresholds.semi_urban_density = r.f64();
  c.thresholds.urban_min_population = r.u32();
  c.p4g_urban = r.f64();
  c.p4g_semi = r.f64();
  c.p4g_rural = r.f64();
  c.p3g_urban = r.f64();
  c.p3g_semi = r.f64();
  c.p3g_rural = r.f64();
  c.p4g_tgv = r.f64();

  workload::PopulationConfig& p = config.population;
  p.market_share = r.f64();
  p.share_jitter = r.f64();
  p.seed = r.u64();

  config.traffic_seed = r.u64();
  config.temporal_noise_sigma = r.f64();
  config.enable_mobility = r.u8() != 0;
  config.mobility.commuter_fraction = r.f64();
  config.mobility.work_start = r.f64();
  config.mobility.work_end = r.f64();
  config.mobility.shoulder_hours = r.f64();
  // v1.0 encodings end here; v1.1 appends the region identifier and the
  // popularity tilt. Reading is length-driven, so old snapshots decode to
  // the defaults (no region tag, untilted catalog) without a version probe.
  if (!r.exhausted()) {
    config.region = r.str();
    config.popularity_tilt = r.f64();
  }
  expect_exhausted(r, "config");
  return config;
}

std::uint64_t config_hash(const synth::ScenarioConfig& config) {
  return fnv1a64(encode_config(config));
}

// --- Territory --------------------------------------------------------------

std::vector<std::byte> encode_territory(const geo::Territory& territory) {
  ByteWriter w;
  w.f64(territory.side_km());
  w.u64(territory.communes().size());
  for (const geo::Commune& commune : territory.communes()) {
    w.u32(commune.id);
    w.str(commune.name);
    encode_point(w, commune.centroid);
    w.f64(commune.area_km2);
    w.u32(commune.population);
    w.u8(static_cast<std::uint8_t>(commune.urbanization));
    w.u32(commune.metro);
    w.u8(commune.has_3g ? 1 : 0);
    w.u8(commune.has_4g ? 1 : 0);
  }
  w.u64(territory.metros().size());
  for (const geo::Metro& metro : territory.metros()) {
    w.str(metro.name);
    encode_point(w, metro.center);
    w.u32(metro.population);
    w.f64(metro.radius_km);
  }
  w.u64(territory.tgv_lines().size());
  for (const geo::Polyline& line : territory.tgv_lines()) {
    w.u64(line.points.size());
    for (const geo::Point& point : line.points) encode_point(w, point);
  }
  return std::move(w).take();
}

geo::Territory decode_territory(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  const double side_km = r.f64();

  const std::uint64_t commune_count = r.u64();
  std::vector<geo::Commune> communes;
  communes.reserve(static_cast<std::size_t>(commune_count));
  for (std::uint64_t i = 0; i < commune_count; ++i) {
    geo::Commune commune;
    commune.id = r.u32();
    commune.name = r.str();
    commune.centroid = decode_point(r);
    commune.area_km2 = r.f64();
    commune.population = r.u32();
    commune.urbanization = checked_enum<geo::Urbanization>(
        r.u8(), geo::kUrbanizationCount, "urbanization class");
    commune.metro = r.u32();
    commune.has_3g = r.u8() != 0;
    commune.has_4g = r.u8() != 0;
    communes.push_back(std::move(commune));
  }

  const std::uint64_t metro_count = r.u64();
  std::vector<geo::Metro> metros;
  metros.reserve(static_cast<std::size_t>(metro_count));
  for (std::uint64_t i = 0; i < metro_count; ++i) {
    geo::Metro metro;
    metro.name = r.str();
    metro.center = decode_point(r);
    metro.population = r.u32();
    metro.radius_km = r.f64();
    metros.push_back(std::move(metro));
  }

  const std::uint64_t line_count = r.u64();
  std::vector<geo::Polyline> lines;
  lines.reserve(static_cast<std::size_t>(line_count));
  for (std::uint64_t i = 0; i < line_count; ++i) {
    geo::Polyline line;
    const std::uint64_t point_count = r.u64();
    line.points.reserve(static_cast<std::size_t>(point_count));
    for (std::uint64_t j = 0; j < point_count; ++j) {
      line.points.push_back(decode_point(r));
    }
    lines.push_back(std::move(line));
  }
  expect_exhausted(r, "territory");
  return geo::Territory(std::move(communes), std::move(metros),
                        std::move(lines), side_km);
}

// --- SubscriberBase ---------------------------------------------------------

std::vector<std::byte> encode_subscribers(const workload::SubscriberBase& base) {
  ByteWriter w;
  w.u64(base.counts().size());
  for (const std::uint32_t count : base.counts()) w.u32(count);
  return std::move(w).take();
}

workload::SubscriberBase decode_subscribers(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  const std::uint64_t count = r.u64();
  std::vector<std::uint32_t> counts;
  counts.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) counts.push_back(r.u32());
  expect_exhausted(r, "subscribers");
  return workload::SubscriberBase(std::move(counts));
}

// --- ServiceCatalog ---------------------------------------------------------

std::vector<std::byte> encode_catalog(const workload::ServiceCatalog& catalog) {
  ByteWriter w;
  w.u64(catalog.size());
  for (const workload::ServiceSpec& spec : catalog.services()) {
    w.str(spec.name);
    w.u8(static_cast<std::uint8_t>(spec.category));
    for (const double rate : spec.urban_weekly_bytes_per_user) w.f64(rate);

    const workload::TemporalProfileParams& t = spec.temporal.params();
    w.f64(t.night_floor);
    w.f64(t.day_center);
    w.f64(t.day_sigma);
    w.f64(t.evening_weight);
    w.f64(t.evening_sigma);
    w.f64(t.weekend_scale);
    w.u64(t.boosts.size());
    for (const workload::PeakBoost& boost : t.boosts) {
      w.u8(static_cast<std::uint8_t>(boost.time));
      w.f64(boost.amplitude);
      w.f64(boost.width_hours);
    }

    const workload::SpatialProfile& s = spec.spatial;
    w.f64(s.semi_urban_ratio);
    w.f64(s.rural_ratio);
    w.f64(s.tgv_ratio);
    w.f64(s.activity_exponent);
    w.f64(s.residual_sigma);
    w.u8(s.requires_4g ? 1 : 0);
    w.f64(s.adoption);
  }
  return std::move(w).take();
}

workload::ServiceCatalog decode_catalog(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  const std::uint64_t count = r.u64();
  std::vector<workload::ServiceSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    workload::ServiceSpec spec;
    spec.name = r.str();
    spec.category = checked_enum<workload::Category>(
        r.u8(), workload::kCategoryCount, "service category");
    for (double& rate : spec.urban_weekly_bytes_per_user) rate = r.f64();

    workload::TemporalProfileParams t;
    t.night_floor = r.f64();
    t.day_center = r.f64();
    t.day_sigma = r.f64();
    t.evening_weight = r.f64();
    t.evening_sigma = r.f64();
    t.weekend_scale = r.f64();
    const std::uint64_t boost_count = r.u64();
    t.boosts.reserve(static_cast<std::size_t>(boost_count));
    for (std::uint64_t b = 0; b < boost_count; ++b) {
      workload::PeakBoost boost;
      boost.time = checked_enum<ts::TopicalTime>(r.u8(), ts::kTopicalTimeCount,
                                                 "topical time");
      boost.amplitude = r.f64();
      boost.width_hours = r.f64();
      t.boosts.push_back(boost);
    }
    spec.temporal = workload::TemporalProfile(std::move(t));

    workload::SpatialProfile& s = spec.spatial;
    s.semi_urban_ratio = r.f64();
    s.rural_ratio = r.f64();
    s.tgv_ratio = r.f64();
    s.activity_exponent = r.f64();
    s.residual_sigma = r.f64();
    s.requires_4g = r.u8() != 0;
    s.adoption = r.f64();
    specs.push_back(std::move(spec));
  }
  expect_exhausted(r, "catalog");
  return workload::ServiceCatalog(std::move(specs));
}

}  // namespace appscope::io
