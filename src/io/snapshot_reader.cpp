#include "io/snapshot_reader.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "io/binary.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define APPSCOPE_SNAPSHOT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define APPSCOPE_SNAPSHOT_HAVE_MMAP 0
#endif

namespace appscope::io {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw util::InputError("snapshot: " + path + ": " + what);
}

}  // namespace

/// Owns the file bytes. Eager mode: one whole-file mmap view (base/size) or,
/// on platforms without mmap, a buffered copy. Lazy mode: the fd stays open,
/// `base` points at the header + table window only, and each section gets
/// its own page-aligned mapping on first touch (recorded in SectionState).
struct SnapshotReader::Backing {
  const std::byte* base = nullptr;
  std::size_t size = 0;
  bool is_mapping = false;
#if APPSCOPE_SNAPSHOT_HAVE_MMAP
  void* map_addr = nullptr;
  std::size_t map_bytes = 0;
  int fd = -1;  // kept open only in lazy mode
#endif
  std::vector<std::byte> buffer;

  ~Backing() {
#if APPSCOPE_SNAPSHOT_HAVE_MMAP
    if (map_addr != nullptr) ::munmap(map_addr, map_bytes);
    if (fd >= 0) ::close(fd);
#endif
  }
};

/// Lazy per-section cache. `payload` is the published, already-CRC-checked
/// pointer (acquire/release pairs with the store under lazy_mu_); the map
/// fields are owned for unmap at destruction.
struct SnapshotReader::SectionState {
  std::atomic<const std::byte*> payload{nullptr};
#if APPSCOPE_SNAPSHOT_HAVE_MMAP
  void* map_addr = nullptr;
  std::size_t map_bytes = 0;
#endif
};

SnapshotReader::SnapshotReader(const std::string& path, ValidationMode mode)
    : path_(path), mode_(mode), backing_(std::make_unique<Backing>()) {
  util::ScopedSpan span(mode == ValidationMode::kLazy ? "snapshot.open_lazy"
                                                      : "snapshot.open");
#if APPSCOPE_SNAPSHOT_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path_, "cannot open for reading");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    fail(path_, "cannot stat");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (mode_ == ValidationMode::kLazy) {
    // Map just the header + section table window; sections come later.
    backing_->fd = fd;
    const std::size_t head_bytes = std::min(size, kPayloadStart);
    if (head_bytes > 0) {
      void* addr = ::mmap(nullptr, head_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
      if (addr == MAP_FAILED) fail(path_, "mmap failed");
      backing_->map_addr = addr;
      backing_->map_bytes = head_bytes;
      backing_->base = static_cast<const std::byte*>(addr);
      backing_->size = head_bytes;
      backing_->is_mapping = true;
    }
    validate_header_and_table({backing_->base, backing_->size}, size);
    lazy_sections_ = std::make_unique<SectionState[]>(entries_.size());
    record_mapped(backing_->size);
    return;
  }
  if (size > 0) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (addr == MAP_FAILED) fail(path_, "mmap failed");
    backing_->map_addr = addr;
    backing_->map_bytes = size;
    backing_->base = static_cast<const std::byte*>(addr);
    backing_->size = size;
    backing_->is_mapping = true;
  } else {
    ::close(fd);
  }
#else
  // No mmap: one buffered read regardless of mode; kLazy degrades to eager.
  mode_ = ValidationMode::kEager;
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path_, "cannot open for reading");
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  if (end < 0) fail(path_, "cannot stat");
  in.seekg(0);
  backing_->buffer.resize(static_cast<std::size_t>(end));
  in.read(reinterpret_cast<char*>(backing_->buffer.data()),
          static_cast<std::streamsize>(backing_->buffer.size()));
  if (!in) fail(path_, "read failed");
  backing_->base = backing_->buffer.data();
  backing_->size = backing_->buffer.size();
#endif
  validate_header_and_table({backing_->base, backing_->size}, backing_->size);
  validate_all_sections();
  record_mapped(backing_->size);
  if (util::MetricsRegistry::enabled()) {
    util::MetricsRegistry::global().add("io.snapshot.bytes_read",
                                        backing_->size);
  }
}

SnapshotReader::~SnapshotReader() {
#if APPSCOPE_SNAPSHOT_HAVE_MMAP
  if (lazy_sections_ != nullptr) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (lazy_sections_[i].map_addr != nullptr) {
        ::munmap(lazy_sections_[i].map_addr, lazy_sections_[i].map_bytes);
      }
    }
  }
#endif
}

std::span<const std::byte> SnapshotReader::bytes() const noexcept {
  return {backing_->base, backing_->size};
}

bool SnapshotReader::mapped() const noexcept { return backing_->is_mapping; }

void SnapshotReader::record_mapped(std::uint64_t bytes) const noexcept {
  mapped_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (util::MetricsRegistry::enabled()) {
    util::MetricsRegistry::global().add("io.snapshot.mapped_bytes", bytes);
  }
}

void SnapshotReader::validate_header_and_table(std::span<const std::byte> head,
                                               std::uint64_t actual_file_bytes) {
  if (head.size() < kHeaderBytes) fail(path_, "truncated (no header)");

  // Magic first — anything else about a foreign file is noise.
  for (std::size_t i = 0; i < kSnapshotMagic.size(); ++i) {
    if (static_cast<std::uint8_t>(head[i]) != kSnapshotMagic[i]) {
      fail(path_, "bad magic (not an appscope snapshot)");
    }
  }

  ByteReader r(head.subspan(kSnapshotMagic.size(),
                            kHeaderBytes - kSnapshotMagic.size()));
  header_.version = r.u32();
  const std::uint32_t major = snapshot_version_major(header_.version);
  const std::uint32_t minor = snapshot_version_minor(header_.version);
  if (major != kSnapshotVersionMajor || minor > kSnapshotVersionMinor) {
    fail(path_, "unsupported format version " + std::to_string(major) + "." +
                    std::to_string(minor) + " (this build reads up to " +
                    std::to_string(kSnapshotVersionMajor) + "." +
                    std::to_string(kSnapshotVersionMinor) + ")");
  }
  header_.config_hash = r.u64();
  header_.traffic_seed = r.u64();
  header_.services = r.u32();
  header_.communes = r.u32();
  header_.hours = r.u32();
  header_.directions = r.u32();
  header_.urbanization_classes = r.u32();
  header_.section_count = r.u32();
  header_.file_bytes = r.u64();
  header_.table_crc = r.u32();

  if (header_.file_bytes != actual_file_bytes) {
    fail(path_, "truncated (header expects " +
                    std::to_string(header_.file_bytes) + " bytes, file has " +
                    std::to_string(actual_file_bytes) + ")");
  }
  if (header_.section_count > kMaxSections) {
    fail(path_, "section count out of range");
  }
  if (head.size() < kPayloadStart) fail(path_, "truncated (no section table)");

  const std::span<const std::byte> table =
      head.subspan(kHeaderBytes, kMaxSections * kSectionEntryBytes);
  if (crc32(table) != header_.table_crc) {
    if (util::MetricsRegistry::enabled()) {
      util::MetricsRegistry::global().add("io.snapshot.checksum_failures");
    }
    fail(path_, "section table checksum mismatch");
  }

  ByteReader tr(table);
  entries_.reserve(header_.section_count);
  for (std::uint32_t i = 0; i < header_.section_count; ++i) {
    SectionEntry e;
    e.id = static_cast<SectionId>(tr.u32());
    const std::uint32_t kind = tr.u32();
    if (kind > static_cast<std::uint32_t>(SectionKind::kU64)) {
      fail(path_, "unknown section kind");
    }
    e.kind = static_cast<SectionKind>(kind);
    e.offset = tr.u64();
    e.payload_bytes = tr.u64();
    e.crc = tr.u32();
    tr.u32();  // reserved
    if (e.offset < kPayloadStart || e.offset % kSectionAlignment != 0 ||
        e.offset + e.payload_bytes > actual_file_bytes ||
        e.offset + e.payload_bytes < e.offset) {
      fail(path_, "section '" + std::string(section_name(e.id)) +
                      "' out of file bounds");
    }
    if (std::any_of(entries_.begin(), entries_.end(),
                    [&](const SectionEntry& prev) { return prev.id == e.id; })) {
      fail(path_, "duplicate section id");
    }
    entries_.push_back(e);
  }
}

void SnapshotReader::check_payload_crc(const SectionEntry& e,
                                       std::span<const std::byte> payload) const {
  util::ScopedSpan section_span("snapshot.verify." +
                                std::string(section_name(e.id)));
  if (crc32(payload) != e.crc) {
    if (util::MetricsRegistry::enabled()) {
      util::MetricsRegistry::global().add("io.snapshot.checksum_failures");
    }
    fail(path_, "section '" + std::string(section_name(e.id)) +
                    "' checksum mismatch (corrupted)");
  }
  if (util::MetricsRegistry::enabled()) {
    util::MetricsRegistry::global().add("io.snapshot.sections");
  }
}

void SnapshotReader::validate_all_sections() {
  // Per-section payload checksums, each under its own span so a slow
  // verification shows up attributed in the trace.
  const std::span<const std::byte> file = bytes();
  for (const SectionEntry& e : entries_) {
    check_payload_crc(e, file.subspan(static_cast<std::size_t>(e.offset),
                                      static_cast<std::size_t>(e.payload_bytes)));
  }
}

bool SnapshotReader::has_section(SectionId id) const noexcept {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const SectionEntry& e) { return e.id == id; });
}

const SectionEntry& SnapshotReader::entry(SectionId id) const {
  for (const SectionEntry& e : entries_) {
    if (e.id == id) return e;
  }
  fail(path_, "missing section '" + std::string(section_name(id)) + "'");
}

std::size_t SnapshotReader::entry_index(const SectionEntry& e) const noexcept {
  return static_cast<std::size_t>(&e - entries_.data());
}

std::span<const std::byte> SnapshotReader::payload(const SectionEntry& e) const {
  if (mode_ == ValidationMode::kLazy) return lazy_payload(e);
  return bytes().subspan(static_cast<std::size_t>(e.offset),
                         static_cast<std::size_t>(e.payload_bytes));
}

std::span<const std::byte> SnapshotReader::lazy_payload(
    const SectionEntry& e) const {
#if APPSCOPE_SNAPSHOT_HAVE_MMAP
  SectionState& state = lazy_sections_[entry_index(e)];
  // Fast path: already mapped + validated by some thread.
  if (const std::byte* p = state.payload.load(std::memory_order_acquire)) {
    return {p, static_cast<std::size_t>(e.payload_bytes)};
  }
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (const std::byte* p = state.payload.load(std::memory_order_acquire)) {
    return {p, static_cast<std::size_t>(e.payload_bytes)};
  }
  static const std::byte kEmpty{};
  const std::byte* payload_ptr = &kEmpty;
  if (e.payload_bytes > 0) {
    // mmap offsets must be page-aligned; payloads are only
    // kSectionAlignment-aligned, so map from the enclosing page boundary.
    // Page sizes are multiples of kSectionAlignment, so the in-page delta
    // keeps the payload pointer kSectionAlignment-aligned.
    const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
    const std::uint64_t map_start = e.offset & ~(page - 1);
    const std::size_t delta = static_cast<std::size_t>(e.offset - map_start);
    const std::size_t map_len = delta + static_cast<std::size_t>(e.payload_bytes);
    void* addr = ::mmap(nullptr, map_len, PROT_READ, MAP_PRIVATE, backing_->fd,
                        static_cast<off_t>(map_start));
    if (addr == MAP_FAILED) {
      fail(path_, "section '" + std::string(section_name(e.id)) +
                      "' mmap failed");
    }
    payload_ptr = static_cast<const std::byte*>(addr) + delta;
    try {
      check_payload_crc(e, {payload_ptr,
                            static_cast<std::size_t>(e.payload_bytes)});
    } catch (...) {
      ::munmap(addr, map_len);
      throw;
    }
    state.map_addr = addr;
    state.map_bytes = map_len;
    record_mapped(map_len);
  } else {
    check_payload_crc(e, {});
  }
  state.payload.store(payload_ptr, std::memory_order_release);
  return {payload_ptr, static_cast<std::size_t>(e.payload_bytes)};
#else
  fail(path_, "lazy section mapping requires mmap");
#endif
}

std::span<const std::byte> SnapshotReader::section(SectionId id) const {
  const SectionEntry& e = entry(id);
  return payload(e);
}

std::span<const double> SnapshotReader::f64_section(SectionId id) const {
  const SectionEntry& e = entry(id);
  if (e.kind != SectionKind::kF64 || e.payload_bytes % sizeof(double) != 0) {
    fail(path_, "section '" + std::string(section_name(id)) +
                    "' is not an f64 column");
  }
  const std::span<const std::byte> raw = payload(e);
  APPSCOPE_CHECK(reinterpret_cast<std::uintptr_t>(raw.data()) %
                         alignof(double) ==
                     0,
                 "snapshot: misaligned f64 section view");
  return {reinterpret_cast<const double*>(raw.data()),
          raw.size() / sizeof(double)};
}

std::span<const std::uint64_t> SnapshotReader::u64_section(SectionId id) const {
  const SectionEntry& e = entry(id);
  if (e.kind != SectionKind::kU64 ||
      e.payload_bytes % sizeof(std::uint64_t) != 0) {
    fail(path_, "section '" + std::string(section_name(id)) +
                    "' is not a u64 column");
  }
  const std::span<const std::byte> raw = payload(e);
  APPSCOPE_CHECK(reinterpret_cast<std::uintptr_t>(raw.data()) %
                         alignof(std::uint64_t) ==
                     0,
                 "snapshot: misaligned u64 section view");
  return {reinterpret_cast<const std::uint64_t*>(raw.data()),
          raw.size() / sizeof(std::uint64_t)};
}

}  // namespace appscope::io
