// appscope/io/snapshot.hpp
//
// High-level dataset persistence: bundle everything a TrafficDataset is
// made of (scenario config, territory, subscriber base, service catalog and
// the four aggregate families) into one "appscope.snapshot/1" file, and
// read it back fully validated. The aggregate payloads travel as raw
// IEEE-754 bit patterns, so save -> load reproduces every aggregate
// bitwise; core::TrafficDataset::save/load are thin wrappers over these two
// functions.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "geo/territory.hpp"
#include "synth/scenario.hpp"
#include "workload/catalog.hpp"
#include "workload/population.hpp"

namespace appscope::io {

/// Flattened copies of the streaming sinks' aggregate state, in the sinks'
/// own storage order (see io/format.hpp for the per-section layout).
struct DatasetAggregates {
  std::size_t services = 0;
  std::size_t communes = 0;
  /// [service][direction][hour], services * 2 * 168 doubles.
  std::vector<double> national;
  /// [direction][service * communes + commune], 2 * services * communes.
  std::vector<double> commune_totals;
  /// [service][class][direction][hour], services * 4 * 2 * 168.
  std::vector<double> urbanization;
  double downlink_total = 0.0;
  double uplink_total = 0.0;
  std::uint64_t cells_consumed = 0;
  /// Subscribers per urbanization class (the dataset's per-user divisors).
  std::array<std::uint64_t, geo::kUrbanizationCount> class_subscribers{};
};

struct SnapshotStats {
  std::uint64_t bytes = 0;
  std::uint32_t sections = 0;
};

/// Writes a complete dataset snapshot. Throws util::InputError on I/O
/// failure and util::PreconditionError when the aggregate shapes disagree
/// with the territory/catalog dimensions.
SnapshotStats write_snapshot(const std::string& path,
                             const synth::ScenarioConfig& config,
                             const geo::Territory& territory,
                             const workload::SubscriberBase& subscribers,
                             const workload::ServiceCatalog& catalog,
                             const DatasetAggregates& aggregates);

/// Everything read_snapshot reconstructs; shared_ptr components slot
/// directly into TrafficDataset's ownership model.
struct LoadedSnapshot {
  synth::ScenarioConfig config;
  std::shared_ptr<const geo::Territory> territory;
  std::shared_ptr<const workload::SubscriberBase> subscribers;
  std::shared_ptr<const workload::ServiceCatalog> catalog;
  DatasetAggregates aggregates;
  /// Header fingerprint, for cheap compatibility checks against a caller's
  /// requested config (see config_hash in io/serialize.hpp).
  std::uint64_t config_hash = 0;
};

/// Reads and validates a snapshot written by write_snapshot. On top of the
/// structural checks in SnapshotReader (magic, version, truncation, CRCs),
/// this cross-checks every dimension: header vs embedded config vs decoded
/// territory/subscribers/catalog vs aggregate section element counts.
/// Any mismatch throws util::InputError.
LoadedSnapshot read_snapshot(const std::string& path);

/// Reads only the header fingerprint of `path` (cheap; validates the whole
/// file structurally). Throws util::InputError like read_snapshot.
std::uint64_t read_snapshot_config_hash(const std::string& path);

/// Most recent complete snapshot in a directory the appscope_serve daemon
/// seals epochs into: `latest.snapshot` when present, otherwise the
/// epoch_<index>.snapshot with the highest index, otherwise "". Only regular
/// files count — a subdirectory named like a snapshot (the region layer
/// publishes `<root>/<region>/epoch_*.snapshot`) never cross-matches. Lives
/// here (not core) so snapshot followers below the core layer can resolve
/// the publish point too.
std::string find_latest_snapshot(const std::string& directory);

/// Same resolution restricted to `<directory>/<subdir>` — the region-keyed
/// publish layout. `subdir` must be a single path component (no separators,
/// not "." or ".."); anything else throws util::InputError so a region id
/// can never escape the publish root.
std::string find_latest_snapshot(const std::string& directory,
                                 const std::string& subdir);

}  // namespace appscope::io
