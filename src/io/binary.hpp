// appscope/io/binary.hpp
//
// Byte-level primitives of the snapshot store: explicit little-endian
// encode/decode (portable across host endianness), CRC32 section checksums
// and the FNV-1a fingerprint used to tie a snapshot to its ScenarioConfig.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace appscope::io {

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320, init/final
/// 0xFFFFFFFF — the zlib/PNG variant) over a byte range.
std::uint32_t crc32(std::span<const std::byte> bytes) noexcept;

/// FNV-1a 64-bit hash; fingerprints the serialized ScenarioConfig so a
/// snapshot can be matched against the configuration a caller asks for.
std::uint64_t fnv1a64(std::span<const std::byte> bytes) noexcept;

/// Append-only little-endian encoder backing every variable-size section
/// (config, territory, subscribers, catalog). Strings are length-prefixed.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(static_cast<std::byte>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Doubles travel as their IEEE-754 bit pattern: encode/decode is exact,
  /// which is what makes `generate -> save -> load` bitwise reproducible.
  void f64(double v);
  void str(std::string_view s);
  void raw(const void* data, std::size_t size);

  std::span<const std::byte> bytes() const noexcept { return buffer_; }
  std::vector<std::byte> take() && noexcept { return std::move(buffer_); }
  std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
};

/// Bounds-checked little-endian decoder over a section payload (typically a
/// zero-copy view into the mapped snapshot). Throws InputError on overrun —
/// a truncated or corrupted section never reads out of bounds.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  void raw(void* out, std::size_t size);

  std::size_t remaining() const noexcept { return bytes_.size() - offset_; }
  bool exhausted() const noexcept { return offset_ == bytes_.size(); }

 private:
  void require(std::size_t size) const;

  std::span<const std::byte> bytes_;
  std::size_t offset_ = 0;
};

}  // namespace appscope::io
