#include "io/snapshot.hpp"

#include <filesystem>
#include <string>
#include <system_error>

#include "io/binary.hpp"
#include "io/serialize.hpp"
#include "io/snapshot_reader.hpp"
#include "io/snapshot_writer.hpp"
#include "ts/calendar.hpp"
#include "util/error.hpp"
#include "util/trace.hpp"

namespace appscope::io {

namespace {

[[noreturn]] void mismatch(const std::string& path, const std::string& what) {
  throw util::InputError("snapshot: " + path + ": " + what);
}

void check_shapes(const geo::Territory& territory,
                  const workload::ServiceCatalog& catalog,
                  const DatasetAggregates& a) {
  const std::size_t services = catalog.size();
  const std::size_t communes = territory.size();
  APPSCOPE_REQUIRE(a.services == services && a.communes == communes,
                   "snapshot: aggregate dimensions disagree with components");
  APPSCOPE_REQUIRE(
      a.national.size() ==
          services * workload::kDirectionCount * ts::kHoursPerWeek,
      "snapshot: national series payload has the wrong shape");
  APPSCOPE_REQUIRE(
      a.commune_totals.size() == workload::kDirectionCount * services * communes,
      "snapshot: commune totals payload has the wrong shape");
  APPSCOPE_REQUIRE(a.urbanization.size() ==
                       services * geo::kUrbanizationCount *
                           workload::kDirectionCount * ts::kHoursPerWeek,
                   "snapshot: urbanization series payload has the wrong shape");
}

}  // namespace

SnapshotStats write_snapshot(const std::string& path,
                             const synth::ScenarioConfig& config,
                             const geo::Territory& territory,
                             const workload::SubscriberBase& subscribers,
                             const workload::ServiceCatalog& catalog,
                             const DatasetAggregates& aggregates) {
  util::ScopedSpan span("snapshot.save");
  check_shapes(territory, catalog, aggregates);
  APPSCOPE_REQUIRE(subscribers.commune_count() == territory.size(),
                   "snapshot: subscriber base disagrees with territory");

  const std::vector<std::byte> config_bytes = encode_config(config);

  SnapshotWriter::Dimensions dims;
  dims.services = static_cast<std::uint32_t>(catalog.size());
  dims.communes = static_cast<std::uint32_t>(territory.size());
  dims.hours = static_cast<std::uint32_t>(ts::kHoursPerWeek);
  dims.directions = static_cast<std::uint32_t>(workload::kDirectionCount);
  dims.urbanization_classes =
      static_cast<std::uint32_t>(geo::kUrbanizationCount);

  SnapshotWriter writer(path, dims, fnv1a64(config_bytes),
                        config.traffic_seed);
  writer.add_section(SectionId::kConfig, config_bytes);
  writer.add_section(SectionId::kTerritory, encode_territory(territory));
  writer.add_section(SectionId::kSubscribers, encode_subscribers(subscribers));
  writer.add_section(SectionId::kCatalog, encode_catalog(catalog));
  writer.add_f64_section(SectionId::kNationalSeries, aggregates.national);
  writer.add_f64_section(SectionId::kCommuneTotals, aggregates.commune_totals);
  writer.add_f64_section(SectionId::kUrbanizationSeries,
                         aggregates.urbanization);
  {
    ByteWriter totals;
    totals.f64(aggregates.downlink_total);
    totals.f64(aggregates.uplink_total);
    totals.u64(aggregates.cells_consumed);
    writer.add_section(SectionId::kTotals, totals.bytes());
  }
  writer.add_u64_section(SectionId::kClassSubscribers,
                         aggregates.class_subscribers);

  SnapshotStats stats;
  stats.sections = 9;
  stats.bytes = writer.finish();
  return stats;
}

LoadedSnapshot read_snapshot(const std::string& path) {
  util::ScopedSpan span("snapshot.load");
  const SnapshotReader reader(path);
  const SnapshotHeader& header = reader.header();

  // The header's dimension block is the contract every section is checked
  // against; reject shapes this build cannot represent before decoding.
  if (header.hours != ts::kHoursPerWeek ||
      header.directions != workload::kDirectionCount ||
      header.urbanization_classes != geo::kUrbanizationCount) {
    mismatch(path, "dimension mismatch (hours/directions/classes differ from "
                   "this build)");
  }

  LoadedSnapshot loaded;
  loaded.config_hash = header.config_hash;

  const auto config_bytes = reader.section(SectionId::kConfig);
  loaded.config = decode_config(config_bytes);
  if (fnv1a64(config_bytes) != header.config_hash) {
    mismatch(path, "config hash disagrees with the embedded config");
  }
  if (loaded.config.traffic_seed != header.traffic_seed) {
    mismatch(path, "header seed disagrees with the embedded config");
  }

  {
    util::ScopedSpan decode_span("snapshot.decode.territory");
    loaded.territory = std::make_shared<const geo::Territory>(
        decode_territory(reader.section(SectionId::kTerritory)));
  }
  {
    util::ScopedSpan decode_span("snapshot.decode.subscribers");
    loaded.subscribers = std::make_shared<const workload::SubscriberBase>(
        decode_subscribers(reader.section(SectionId::kSubscribers)));
  }
  {
    util::ScopedSpan decode_span("snapshot.decode.catalog");
    loaded.catalog = std::make_shared<const workload::ServiceCatalog>(
        decode_catalog(reader.section(SectionId::kCatalog)));
  }

  if (loaded.territory->size() != header.communes) {
    mismatch(path, "dimension mismatch (territory has " +
                       std::to_string(loaded.territory->size()) +
                       " communes, header says " +
                       std::to_string(header.communes) + ")");
  }
  if (loaded.catalog->size() != header.services) {
    mismatch(path, "dimension mismatch (catalog has " +
                       std::to_string(loaded.catalog->size()) +
                       " services, header says " +
                       std::to_string(header.services) + ")");
  }
  if (loaded.subscribers->commune_count() != header.communes) {
    mismatch(path, "dimension mismatch (subscriber counts vs communes)");
  }

  DatasetAggregates& a = loaded.aggregates;
  a.services = header.services;
  a.communes = header.communes;
  // The typed views are zero-copy into the mapping; materializing the
  // dataset's own vectors is the single copy on the load path.
  const auto national = reader.f64_section(SectionId::kNationalSeries);
  const auto commune_totals = reader.f64_section(SectionId::kCommuneTotals);
  const auto urbanization = reader.f64_section(SectionId::kUrbanizationSeries);
  a.national.assign(national.begin(), national.end());
  a.commune_totals.assign(commune_totals.begin(), commune_totals.end());
  a.urbanization.assign(urbanization.begin(), urbanization.end());
  try {
    check_shapes(*loaded.territory, *loaded.catalog, a);
  } catch (const util::PreconditionError& e) {
    mismatch(path, std::string("dimension mismatch (") + e.what() + ")");
  }

  {
    ByteReader totals(reader.section(SectionId::kTotals));
    a.downlink_total = totals.f64();
    a.uplink_total = totals.f64();
    a.cells_consumed = totals.u64();
    if (!totals.exhausted()) mismatch(path, "totals section malformed");
  }
  {
    const auto classes = reader.u64_section(SectionId::kClassSubscribers);
    if (classes.size() != geo::kUrbanizationCount) {
      mismatch(path, "class subscriber section malformed");
    }
    for (std::size_t u = 0; u < geo::kUrbanizationCount; ++u) {
      a.class_subscribers[u] = classes[u];
    }
    // Cross-check against the decoded components: the class divisors are
    // derivable, so disagreement means an inconsistent (tampered) file.
    for (std::size_t u = 0; u < geo::kUrbanizationCount; ++u) {
      const std::uint64_t recomputed = loaded.subscribers->total_in(
          *loaded.territory, static_cast<geo::Urbanization>(u));
      if (recomputed != a.class_subscribers[u]) {
        mismatch(path, "class subscriber totals disagree with the embedded "
                       "territory/subscriber base");
      }
    }
  }
  return loaded;
}

std::uint64_t read_snapshot_config_hash(const std::string& path) {
  const SnapshotReader reader(path);
  return reader.header().config_hash;
}

std::string find_latest_snapshot(const std::string& directory) {
  namespace fs = std::filesystem;
  const fs::path dir(directory);
  const fs::path latest = dir / "latest.snapshot";
  std::error_code ec;
  if (fs::is_regular_file(latest, ec)) return latest.string();

  // No latest.snapshot (sealing interrupted between the epoch rename and
  // the republish): fall back to the highest-numbered sealed epoch.
  std::string best;
  std::string best_name;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("epoch_") || !name.ends_with(".snapshot")) continue;
    // Region-keyed layouts nest publish dirs under this root; only regular
    // files are candidate snapshots here.
    std::error_code file_ec;
    if (!entry.is_regular_file(file_ec)) continue;
    // Zero-padded indices make lexicographic order the numeric order.
    if (best_name.empty() || name > best_name) {
      best_name = name;
      best = entry.path().string();
    }
  }
  return best;
}

std::string find_latest_snapshot(const std::string& directory,
                                 const std::string& subdir) {
  if (subdir.empty() || subdir == "." || subdir == ".." ||
      subdir.find('/') != std::string::npos ||
      subdir.find('\\') != std::string::npos) {
    throw util::InputError(
        "find_latest_snapshot: subdirectory filter \"" + subdir +
        "\" must be a single path component");
  }
  return find_latest_snapshot(
      (std::filesystem::path(directory) / subdir).string());
}

}  // namespace appscope::io
