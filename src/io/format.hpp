// appscope/io/format.hpp
//
// On-disk layout of the "appscope.snapshot/1" binary columnar format.
//
//   offset 0                 FileHeader (kHeaderBytes, little-endian)
//   kHeaderBytes             section table (kMaxSections fixed slots of
//                            kSectionEntryBytes; entries past
//                            header.section_count are zero)
//   align64(...)             section payloads, each aligned to
//                            kSectionAlignment so a double/u64 column can be
//                            viewed in place straight out of an mmap
//
// Every section carries a CRC32 of its payload in the table; the table
// itself is covered by header.table_crc, and header.file_bytes pins the
// expected total size so truncation is detected before any payload is
// touched. All multi-byte values are little-endian on disk.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace appscope::io {

/// File magic, first 8 bytes. The trailing \r\n\x1a catches FTP-style text
/// transcoding the same way the PNG magic does.
inline constexpr std::array<std::uint8_t, 8> kSnapshotMagic = {
    0x89, 'A', 'P', 'S', 'N', 'P', '\r', '\n'};

/// Format version ("appscope.snapshot/1"), packed major.minor: the low 16
/// bits carry the major version, the high 16 bits the minor. v1.0 files
/// wrote the bare major (1), which unpacks to minor 0 — so the packing is
/// itself backward compatible. Minor bumps are additive (v1.1: the config
/// section carries a region identifier and popularity tilt); readers accept
/// any minor up to their own and reject newer majors AND newer minors — a
/// file from the future may carry sections this build cannot interpret.
inline constexpr std::uint32_t kSnapshotVersionMajor = 1;
inline constexpr std::uint32_t kSnapshotVersionMinor = 1;
inline constexpr std::string_view kSnapshotSchemaName = "appscope.snapshot/1";

constexpr std::uint32_t pack_snapshot_version(std::uint32_t major,
                                              std::uint32_t minor) noexcept {
  return (minor << 16) | (major & 0xFFFFu);
}
constexpr std::uint32_t snapshot_version_major(std::uint32_t v) noexcept {
  return v & 0xFFFFu;
}
constexpr std::uint32_t snapshot_version_minor(std::uint32_t v) noexcept {
  return v >> 16;
}

/// The packed version written by this build.
inline constexpr std::uint32_t kSnapshotVersion =
    pack_snapshot_version(kSnapshotVersionMajor, kSnapshotVersionMinor);

/// Payload alignment: generous enough for any scalar column type and for
/// cache-line-aligned bulk copies out of the mapping.
inline constexpr std::size_t kSectionAlignment = 64;

/// Fixed section-table capacity. The table is written up front (before the
/// payload sizes are known) so the writer streams sections in one pass and
/// seeks back only once; v1 uses 9 of the 16 slots.
inline constexpr std::size_t kMaxSections = 16;

inline constexpr std::size_t kHeaderBytes = 80;
inline constexpr std::size_t kSectionEntryBytes = 32;

constexpr std::size_t align_up(std::size_t n, std::size_t alignment) noexcept {
  return (n + alignment - 1) / alignment * alignment;
}

/// First payload byte: header, then the fixed-capacity table, aligned.
inline constexpr std::size_t kPayloadStart =
    align_up(kHeaderBytes + kMaxSections * kSectionEntryBytes,
             kSectionAlignment);

/// One section per aggregate family plus the self-containment sections.
enum class SectionId : std::uint32_t {
  kConfig = 1,              // serialized synth::ScenarioConfig
  kTerritory = 2,           // serialized geo::Territory
  kSubscribers = 3,         // workload::SubscriberBase per-commune counts
  kCatalog = 4,             // serialized workload::ServiceCatalog
  kNationalSeries = 5,      // f64 [service][direction][hour]
  kCommuneTotals = 6,       // f64 [direction][service * communes + commune]
  kUrbanizationSeries = 7,  // f64 [service][class][direction][hour]
  kTotals = 8,              // raw: downlink f64, uplink f64, cells u64
  kClassSubscribers = 9,    // u64 [urbanization class]
};

/// Element type of a section payload; scalar columns get alignment + an
/// exact element-count check on load, raw sections are decoded by
/// ByteReader.
enum class SectionKind : std::uint32_t {
  kRaw = 0,
  kF64 = 1,
  kU64 = 2,
};

/// Stable lowercase name, used for metric/span labels and error messages.
std::string_view section_name(SectionId id) noexcept;

/// Decoded file header.
struct SnapshotHeader {
  std::uint32_t version = kSnapshotVersion;
  /// FNV-1a fingerprint of the serialized ScenarioConfig section.
  std::uint64_t config_hash = 0;
  std::uint64_t traffic_seed = 0;
  // Dimensions the columnar sections are shaped by.
  std::uint32_t services = 0;
  std::uint32_t communes = 0;
  std::uint32_t hours = 0;
  std::uint32_t directions = 0;
  std::uint32_t urbanization_classes = 0;
  std::uint32_t section_count = 0;
  /// Expected total file size (truncation check).
  std::uint64_t file_bytes = 0;
  /// CRC32 over the kMaxSections * kSectionEntryBytes table bytes.
  std::uint32_t table_crc = 0;
};

/// Decoded section-table entry.
struct SectionEntry {
  SectionId id = SectionId::kConfig;
  SectionKind kind = SectionKind::kRaw;
  std::uint64_t offset = 0;
  std::uint64_t payload_bytes = 0;
  std::uint32_t crc = 0;
};

}  // namespace appscope::io
